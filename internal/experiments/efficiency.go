package experiments

import (
	"fmt"
	"strings"
	"text/tabwriter"
	"time"
)

// ---------------------------------------------------------------- Fig. 14

// Fig14Row is one query's processing-time comparison.
type Fig14Row struct {
	ID       string
	MQGEdges int
	GQBE     time.Duration
	NESS     time.Duration
	Baseline time.Duration
	// BaselineTruncated reports the Baseline hit its evaluation cap (its
	// time is then a lower bound).
	BaselineTruncated bool
}

// Fig14Result compares query processing time across methods on the
// Freebase queries (paper Fig. 14; MQG edge counts annotated as there).
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14 measures query processing time (the lattice-search / matching
// phase; MQG discovery is shared by all methods and reported in Table VI).
func (s *Suite) Fig14() *Fig14Result {
	res := &Fig14Result{}
	for _, id := range s.fbIDs() {
		row := Fig14Row{ID: id}
		if g := s.runGQBE(id, 1); g.Err == nil {
			row.GQBE = g.Stats.Processing
			row.MQGEdges = g.Stats.MQGEdges
		}
		if n := s.runNESS(id); n.Err == nil {
			row.NESS = n.Elapsed
		}
		if b := s.runBaseline(id); b.Err == nil {
			row.Baseline = b.Elapsed
			row.BaselineTruncated = b.Truncated
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the time comparison.
func (r *Fig14Result) Render() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 14: query processing time (ms)")
	fmt.Fprintln(w, "Query\t#edges in MQG\tGQBE\tNESS\tBaseline")
	for _, row := range r.Rows {
		base := fmt.Sprintf("%.1f", ms(row.Baseline))
		if row.BaselineTruncated {
			base = ">" + base
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%s\n", row.ID, row.MQGEdges, ms(row.GQBE), ms(row.NESS), base)
	}
	w.Flush()
	return b.String()
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

// ---------------------------------------------------------------- Fig. 15

// Fig15Row is one query's lattice-evaluation comparison.
type Fig15Row struct {
	ID                string
	MQGEdges          int
	GQBE              int
	Baseline          int
	BaselineTruncated bool
}

// Fig15Result compares the number of lattice nodes evaluated by GQBE's
// best-first search and the breadth-first Baseline (paper Fig. 15).
type Fig15Result struct {
	Rows []Fig15Row
}

// Fig15 counts evaluated lattice nodes per method.
func (s *Suite) Fig15() *Fig15Result {
	res := &Fig15Result{}
	for _, id := range s.fbIDs() {
		row := Fig15Row{ID: id}
		if g := s.runGQBE(id, 1); g.Err == nil {
			row.GQBE = g.Stats.NodesEvaluated
			row.MQGEdges = g.Stats.MQGEdges
		}
		if b := s.runBaseline(id); b.Err == nil {
			row.Baseline = b.NodesEvaluated
			row.BaselineTruncated = b.Truncated
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the node-count comparison.
func (r *Fig15Result) Render() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 15: number of lattice nodes evaluated")
	fmt.Fprintln(w, "Query\t#edges in MQG\tGQBE\tBaseline")
	for _, row := range r.Rows {
		base := fmt.Sprintf("%d", row.Baseline)
		if row.BaselineTruncated {
			base = ">" + base
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", row.ID, row.MQGEdges, row.GQBE, base)
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------- Fig. 16

// Fig16Row compares merged-MQG processing against evaluating the two
// tuples' MQGs separately.
type Fig16Row struct {
	ID         string
	Combined12 time.Duration
	Separate   time.Duration // Tuple1 + Tuple2 processing time
}

// Fig16Result is the 2-tuple query time distribution (paper Fig. 16).
type Fig16Result struct {
	Rows []Fig16Row
}

// Fig16 measures 2-tuple query processing time: the merged MQG
// (Combined(1,2)) against the sum of the two individual evaluations.
func (s *Suite) Fig16() *Fig16Result {
	res := &Fig16Result{}
	for _, id := range tableVQueries {
		row := Fig16Row{ID: id}
		if c := s.runGQBE(id, 2); c.Err == nil {
			row.Combined12 = c.Stats.Processing
		}
		t1 := s.runGQBEWithTupleIndex(id, 0)
		t2 := s.runGQBEWithTupleIndex(id, 1)
		if t1.Err == nil && t2.Err == nil {
			row.Separate = t1.Stats.Processing + t2.Stats.Processing
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the 2-tuple timing comparison.
func (r *Fig16Result) Render() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Fig. 16: query processing time of 2-tuple queries (ms)")
	fmt.Fprintln(w, "Query\tCombined(1,2)\tTuple1+Tuple2")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\n", row.ID, ms(row.Combined12), ms(row.Separate))
	}
	w.Flush()
	return b.String()
}

// ---------------------------------------------------------------- Table VI

// TableVIRow is one query's MQG discovery/merge timing.
type TableVIRow struct {
	ID    string
	MQG1  time.Duration
	MQG2  time.Duration
	Merge time.Duration
}

// TableVIResult is the discovery/merge time table (paper Table VI).
type TableVIResult struct {
	Rows []TableVIRow
}

// TableVI measures per-tuple MQG discovery time and the merge time for
// 2-tuple queries, across all Freebase queries as in the paper.
func (s *Suite) TableVI() *TableVIResult {
	res := &TableVIResult{}
	for _, id := range s.fbIDs() {
		row := TableVIRow{ID: id}
		if t1 := s.runGQBEWithTupleIndex(id, 0); t1.Err == nil {
			row.MQG1 = t1.Stats.Discovery
		}
		if t2 := s.runGQBEWithTupleIndex(id, 1); t2.Err == nil {
			row.MQG2 = t2.Stats.Discovery
		}
		if c := s.runGQBE(id, 2); c.Err == nil {
			row.Merge = c.Stats.Merge
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render prints the discovery/merge table.
func (r *TableVIResult) Render() string {
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "Table VI: time for discovering and merging MQGs (ms)")
	fmt.Fprintln(w, "Query\tMQG1\tMQG2\tMerge")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\n", row.ID, ms(row.MQG1), ms(row.MQG2), ms(row.Merge))
	}
	w.Flush()
	return b.String()
}

// RenderAll runs every experiment and concatenates the rendered tables in
// paper order.
func (s *Suite) RenderAll() string {
	var b strings.Builder
	b.WriteString(s.TableI().Render())
	b.WriteString("\n")
	b.WriteString(s.TableII().Render())
	b.WriteString("\n")
	b.WriteString(s.Fig13().Render())
	b.WriteString("\n")
	b.WriteString(s.TableIII().Render())
	b.WriteString("\n")
	b.WriteString(s.TableIV().Render())
	b.WriteString("\n")
	b.WriteString(s.TableV().Render())
	b.WriteString("\n")
	b.WriteString(s.Fig14().Render())
	b.WriteString("\n")
	b.WriteString(s.Fig15().Render())
	b.WriteString("\n")
	b.WriteString(s.Fig16().Render())
	b.WriteString("\n")
	b.WriteString(s.TableVI().Render())
	return b.String()
}
