package experiments

import (
	"testing"

	"gqbe/internal/graph"
	"gqbe/internal/testkg"
)

func TestJudgeSimilaritySelfIsMaximal(t *testing.T) {
	g := testkg.Fig1()
	q := testkg.Tuple(g, "Jerry Yang", "Yahoo!")
	self := judgeSimilarity(g, q, q)
	if self < 0.999 || self > 1.001 {
		t.Errorf("self similarity = %v, want 1", self)
	}
}

func TestJudgeSimilarityOrdersAnswersSensibly(t *testing.T) {
	g := testkg.Fig1()
	q := testkg.Tuple(g, "Jerry Yang", "Yahoo!")
	// Wozniak/Apple shares the founded/places_lived/nationality/hq kinds;
	// a city pair shares nothing relevant.
	woz := testkg.Tuple(g, "Steve Wozniak", "Apple Inc.")
	cities := testkg.Tuple(g, "Sunnyvale", "Cupertino")
	sWoz := judgeSimilarity(g, q, woz)
	sCities := judgeSimilarity(g, q, cities)
	if !(sWoz > sCities) {
		t.Errorf("judge prefers cities (%v) over founder pair (%v)", sCities, sWoz)
	}
	if sWoz <= 0 || sWoz >= 1 {
		t.Errorf("founder pair similarity out of open range: %v", sWoz)
	}
}

func TestJudgeSimilarityDegenerateInputs(t *testing.T) {
	g := testkg.Fig1()
	q := testkg.Tuple(g, "Jerry Yang")
	if judgeSimilarity(g, q, nil) != 0 {
		t.Error("length mismatch should be 0")
	}
	if judgeSimilarity(g, nil, nil) != 0 {
		t.Error("empty tuples should be 0")
	}
}

func TestJudgeSimilarityIdenticalNeighborsBeatKindsOnly(t *testing.T) {
	g := graph.New()
	// Query person q lives in Metropolis and works at Acme.
	g.AddEdge("q", "lives", "Metropolis")
	g.AddEdge("q", "works", "Acme")
	// a shares the exact neighbors; b shares only the kinds of facts.
	g.AddEdge("a", "lives", "Metropolis")
	g.AddEdge("a", "works", "Acme")
	g.AddEdge("b", "lives", "Smallville")
	g.AddEdge("b", "works", "Initech")
	q := []graph.NodeID{g.MustNode("q")}
	sa := judgeSimilarity(g, q, []graph.NodeID{g.MustNode("a")})
	sb := judgeSimilarity(g, q, []graph.NodeID{g.MustNode("b")})
	if !(sa > sb && sb > 0) {
		t.Errorf("want identical-neighbor answer (%v) above kinds-only (%v) above 0", sa, sb)
	}
}
