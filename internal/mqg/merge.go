package mqg

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gqbe/internal/graph"
)

// MergeCtx combines the individual MQGs of multiple query tuples into one
// merged, re-weighted MQG (§III-D). Each tuple's query entities are replaced
// by virtual entities w1..wn (shared across tuples), vertices and edges are
// unioned, and an edge that appears in c of the virtual MQGs receives weight
// c·wmax(e), where wmax is its maximal weight among them. If the merged
// graph exceeds the target size r, it is trimmed by the same greedy used for
// single-tuple discovery (Alg. 1), with the virtual entities as the query
// tuple. The cancellation context is observed when the merged graph exceeds
// the budget and is trimmed (via discoverWeighted's per-part checks); the
// union itself is over already-budget-bounded MQGs and is cheap enough to
// run to completion.
func MergeCtx(ctx context.Context, mqgs []*MQG, r int) (*MQG, error) {
	if len(mqgs) == 0 {
		return nil, errors.New("mqg: no MQGs to merge")
	}
	n := len(mqgs[0].Tuple)
	for _, m := range mqgs {
		if len(m.Tuple) != n {
			return nil, fmt.Errorf("mqg: cannot merge MQGs of different tuple sizes %d and %d", n, len(m.Tuple))
		}
	}
	if r < 1 {
		return nil, fmt.Errorf("mqg: target size r = %d, need ≥ 1", r)
	}

	type agg struct {
		count int
		wmax  float64
	}
	merged := make(map[graph.Edge]*agg)
	var order []graph.Edge // first-seen order for determinism
	for _, m := range mqgs {
		toVirtual := make(map[graph.NodeID]graph.NodeID, n)
		for slot, v := range m.Tuple {
			toVirtual[v] = VirtualNode(slot)
		}
		mapNode := func(v graph.NodeID) graph.NodeID {
			if w, ok := toVirtual[v]; ok {
				return w
			}
			return v
		}
		// Within one source MQG an edge must contribute at most once to the
		// presence count even if two of its edges collapse onto the same
		// virtual edge.
		seen := make(map[graph.Edge]bool)
		for i, e := range m.Sub.Edges {
			ve := graph.Edge{Src: mapNode(e.Src), Label: e.Label, Dst: mapNode(e.Dst)}
			a, ok := merged[ve]
			if !ok {
				a = &agg{}
				merged[ve] = a
				order = append(order, ve)
			}
			if !seen[ve] {
				a.count++
				seen[ve] = true
			}
			if w := m.Weights[i]; w > a.wmax {
				a.wmax = w
			}
		}
	}

	edges := make([]graph.Edge, len(order))
	weights := make([]float64, len(order))
	copy(edges, order)
	for i, e := range edges {
		a := merged[e]
		weights[i] = float64(a.count) * a.wmax
	}

	virtualTuple := make([]graph.NodeID, n)
	for slot := range virtualTuple {
		virtualTuple[slot] = VirtualNode(slot)
	}

	sub := graph.NewSubGraph(edges)
	if len(sub.Edges) > r {
		trimmed, err := discoverWeighted(ctx, sub, weights, virtualTuple, r)
		if err != nil {
			return nil, fmt.Errorf("mqg: trimming merged MQG: %w", err)
		}
		// Re-associate weights with the surviving edges.
		kept := make([]float64, len(trimmed.Edges))
		for i, e := range trimmed.Edges {
			kept[i] = float64(merged[e].count) * merged[e].wmax
		}
		sub, weights = trimmed, kept
	}
	if !sub.IsWeaklyConnected(virtualTuple) {
		return nil, errors.New("mqg: merged MQG is not weakly connected over the virtual entities")
	}
	out := &MQG{
		Sub:     sub,
		Weights: weights,
		Depths:  edgeDepths(sub, virtualTuple),
		Tuple:   virtualTuple,
	}
	return out, nil
}

// SortEdgesByWeight returns the MQG's edge indices in descending weight
// order with a deterministic tie-break, used by displays and tests.
func (m *MQG) SortEdgesByWeight() []int {
	order := make([]int, len(m.Sub.Edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if m.Weights[i] != m.Weights[j] {
			return m.Weights[i] > m.Weights[j]
		}
		ei, ej := m.Sub.Edges[i], m.Sub.Edges[j]
		if ei.Src != ej.Src {
			return ei.Src < ej.Src
		}
		if ei.Label != ej.Label {
			return ei.Label < ej.Label
		}
		return ei.Dst < ej.Dst
	})
	return order
}
