package mqg

import (
	"context"
	"math"
	"testing"

	"gqbe/internal/graph"
	"gqbe/internal/neighborhood"
	"gqbe/internal/stats"
	"gqbe/internal/storage"
	"gqbe/internal/testkg"
)

func TestVirtualNodeHelpers(t *testing.T) {
	for slot := 0; slot < 5; slot++ {
		v := VirtualNode(slot)
		if !IsVirtual(v) {
			t.Errorf("VirtualNode(%d) = %d not virtual", slot, v)
		}
		if VirtualSlot(v) != slot {
			t.Errorf("VirtualSlot(VirtualNode(%d)) = %d", slot, VirtualSlot(v))
		}
	}
	if IsVirtual(0) || IsVirtual(42) {
		t.Error("data-graph IDs must not be virtual")
	}
}

func TestNodeName(t *testing.T) {
	g := testkg.Fig1()
	if got := NodeName(g, VirtualNode(0)); got != "w1" {
		t.Errorf("NodeName(virtual 0) = %q, want w1", got)
	}
	if got := NodeName(g, g.MustNode("Yahoo!")); got != "Yahoo!" {
		t.Errorf("NodeName = %q", got)
	}
}

// discoverFor builds an MQG for one tuple over the Fig. 1 graph.
func discoverFor(t *testing.T, g *graph.Graph, st *stats.Stats, r int, names ...string) *MQG {
	t.Helper()
	tuple := testkg.Tuple(g, names...)
	nres, err := neighborhood.ExtractCtx(context.Background(), g, tuple, 2)
	if err != nil {
		t.Fatalf("Extract(%v): %v", names, err)
	}
	m, err := DiscoverCtx(context.Background(), st, nres.Reduced, tuple, r)
	if err != nil {
		t.Fatalf("DiscoverCtx(context.Background(), %v): %v", names, err)
	}
	return m
}

func TestMergeFig8Scenario(t *testing.T) {
	// The paper's Example 3: merging the MQGs of ⟨Steve Wozniak, Apple Inc.⟩
	// and ⟨Jerry Yang, Yahoo!⟩ must merge the founded edges (both incident
	// on w1, w2 in virtual form) and keep per-tuple edges like education.
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	m1 := discoverFor(t, g, st, 10, "Steve Wozniak", "Apple Inc.")
	m2 := discoverFor(t, g, st, 10, "Jerry Yang", "Yahoo!")
	merged, err := MergeCtx(context.Background(), []*MQG{m1, m2}, 15)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if len(merged.Tuple) != 2 || !IsVirtual(merged.Tuple[0]) || !IsVirtual(merged.Tuple[1]) {
		t.Fatalf("merged tuple not virtual: %v", merged.Tuple)
	}
	founded, _ := g.Label("founded")
	fe := graph.Edge{Src: VirtualNode(0), Label: founded, Dst: VirtualNode(1)}
	w := merged.WeightOf(fe)
	if w == 0 {
		t.Fatalf("merged MQG lost the virtual founded edge; edges: %v", merged.Sub.Edges)
	}
	// Present in both source MQGs → weight must be 2 × the max single weight.
	w1 := m1.WeightOf(graph.Edge{Src: g.MustNode("Steve Wozniak"), Label: founded, Dst: g.MustNode("Apple Inc.")})
	w2 := m2.WeightOf(graph.Edge{Src: g.MustNode("Jerry Yang"), Label: founded, Dst: g.MustNode("Yahoo!")})
	want := 2 * math.Max(w1, w2)
	if math.Abs(w-want) > 1e-12 {
		t.Errorf("merged founded weight = %v, want c·wmax = %v", w, want)
	}
}

func TestMergeSharedNonEntityNodesMerge(t *testing.T) {
	// Jerry Yang and Steve Wozniak both lived in San Jose: after mapping the
	// founders to w1, the two places_lived edges become the identical edge
	// (w1 -places_lived-> San Jose) and must merge with count 2.
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	m1 := discoverFor(t, g, st, 10, "Steve Wozniak", "Apple Inc.")
	m2 := discoverFor(t, g, st, 10, "Jerry Yang", "Yahoo!")
	pl, ok := g.Label("places_lived")
	if !ok {
		t.Fatal("no places_lived label")
	}
	sj := g.MustNode("San Jose")
	e1 := graph.Edge{Src: g.MustNode("Steve Wozniak"), Label: pl, Dst: sj}
	e2 := graph.Edge{Src: g.MustNode("Jerry Yang"), Label: pl, Dst: sj}
	if m1.WeightOf(e1) == 0 || m2.WeightOf(e2) == 0 {
		t.Skip("places_lived did not survive MQG trimming in this configuration")
	}
	merged, err := MergeCtx(context.Background(), []*MQG{m1, m2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	ve := graph.Edge{Src: VirtualNode(0), Label: pl, Dst: sj}
	want := 2 * math.Max(m1.WeightOf(e1), m2.WeightOf(e2))
	if got := merged.WeightOf(ve); math.Abs(got-want) > 1e-12 {
		t.Errorf("merged places_lived weight = %v, want %v", got, want)
	}
}

func TestMergeHeadquarteredNotMerged(t *testing.T) {
	// Example 3 again: headquartered_in edges share only one endpoint (w2);
	// the cities differ, so they must remain separate edges with count 1.
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	m1 := discoverFor(t, g, st, 10, "Steve Wozniak", "Apple Inc.")
	m2 := discoverFor(t, g, st, 10, "Jerry Yang", "Yahoo!")
	hq, _ := g.Label("headquartered_in")
	cup, sun := g.MustNode("Cupertino"), g.MustNode("Sunnyvale")
	merged, err := MergeCtx(context.Background(), []*MQG{m1, m2}, 25)
	if err != nil {
		t.Fatal(err)
	}
	we1 := merged.WeightOf(graph.Edge{Src: VirtualNode(1), Label: hq, Dst: cup})
	we2 := merged.WeightOf(graph.Edge{Src: VirtualNode(1), Label: hq, Dst: sun})
	if we1 == 0 || we2 == 0 {
		t.Skip("headquartered_in edges trimmed from merged MQG")
	}
	c1 := m1.WeightOf(graph.Edge{Src: g.MustNode("Apple Inc."), Label: hq, Dst: cup})
	c2 := m2.WeightOf(graph.Edge{Src: g.MustNode("Yahoo!"), Label: hq, Dst: sun})
	if math.Abs(we1-c1) > 1e-12 || math.Abs(we2-c2) > 1e-12 {
		t.Errorf("unshared edges must keep count-1 weights: got %v/%v want %v/%v", we1, we2, c1, c2)
	}
}

func TestMergeTrimsToBudget(t *testing.T) {
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	m1 := discoverFor(t, g, st, 10, "Steve Wozniak", "Apple Inc.")
	m2 := discoverFor(t, g, st, 10, "Jerry Yang", "Yahoo!")
	merged, err := MergeCtx(context.Background(), []*MQG{m1, m2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Sub.Edges) > 8 {
		t.Errorf("merged MQG has %d edges, expected close to r=5", len(merged.Sub.Edges))
	}
	if !merged.Sub.IsWeaklyConnected(merged.Tuple) {
		t.Error("trimmed merged MQG disconnected")
	}
}

func TestMergeSingleMQGIsIdentityModuloVirtual(t *testing.T) {
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	m := discoverFor(t, g, st, 10, "Jerry Yang", "Yahoo!")
	merged, err := MergeCtx(context.Background(), []*MQG{m}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Sub.Edges) != len(m.Sub.Edges) {
		t.Fatalf("edge count changed: %d vs %d", len(merged.Sub.Edges), len(m.Sub.Edges))
	}
	// Every merged weight must equal 1 × the original weight.
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	if math.Abs(merged.TotalWeight()-total) > 1e-9 {
		t.Errorf("total weight changed on identity merge: %v vs %v", merged.TotalWeight(), total)
	}
}

func TestMergeErrors(t *testing.T) {
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	if _, err := MergeCtx(context.Background(), nil, 10); err == nil {
		t.Error("empty merge accepted")
	}
	m2 := discoverFor(t, g, st, 10, "Jerry Yang", "Yahoo!")
	m1 := discoverFor(t, g, st, 10, "Stanford")
	if _, err := MergeCtx(context.Background(), []*MQG{m1, m2}, 10); err == nil {
		t.Error("mismatched tuple sizes accepted")
	}
	if _, err := MergeCtx(context.Background(), []*MQG{m2}, 0); err == nil {
		t.Error("r=0 accepted")
	}
}

func TestSortEdgesByWeight(t *testing.T) {
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	m := discoverFor(t, g, st, 12, "Jerry Yang", "Yahoo!")
	order := m.SortEdgesByWeight()
	if len(order) != len(m.Sub.Edges) {
		t.Fatalf("order length %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		if m.Weights[order[i-1]] < m.Weights[order[i]] {
			t.Fatalf("weights not descending at %d", i)
		}
	}
}
