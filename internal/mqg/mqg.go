// Package mqg discovers the weighted maximal query graph (MQG) of §III: a
// small, balanced, weakly connected subgraph of the reduced neighborhood
// graph that maximizes total edge weight while containing all query entities
// (Def. 5, Alg. 1). It also merges the MQGs of multiple query tuples into
// one re-weighted MQG (§III-D).
//
// Finding the optimal MQG is NP-hard (Thm. 1, by reduction from constrained
// Steiner network), so Alg. 1 is a greedy divide-and-conquer: the reduced
// neighborhood graph is split into a core graph (paths between query
// entities) and one individual subgraph per entity, and each part is trimmed
// independently to a balanced share of the edge budget r by scanning edges
// in descending weight order.
package mqg

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"gqbe/internal/graph"
	"gqbe/internal/stats"
)

// MQG is a discovered maximal query graph: a small weighted subgraph of the
// data graph (or, for merged MQGs, of the virtual-entity graph) containing
// all query entities.
type MQG struct {
	// Sub holds the MQG's edges. For merged multi-tuple MQGs, query
	// entities are replaced by virtual nodes (negative IDs, see
	// VirtualNode); all other node IDs are data-graph IDs.
	Sub *graph.SubGraph
	// Weights parallels Sub.Edges: the depth-discounted Eq. 8 weight for
	// single-tuple MQGs, or c·wmax (§III-D) for merged MQGs.
	Weights []float64
	// Depths parallels Sub.Edges: the Eq. 7 edge depth, clamped to ≥1.
	Depths []int
	// Tuple is the query tuple this MQG captures: data-graph node IDs for a
	// single-tuple MQG, virtual node IDs for a merged MQG.
	Tuple []graph.NodeID
}

// TotalWeight returns the sum of all edge weights (the s_score of the MQG
// itself).
func (m *MQG) TotalWeight() float64 {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	return total
}

// WeightOf returns the weight of edge e, or 0 if e is not in the MQG.
func (m *MQG) WeightOf(e graph.Edge) float64 {
	for i, x := range m.Sub.Edges {
		if x == e {
			return m.Weights[i]
		}
	}
	return 0
}

// IncidentCount returns |E(u)|: the number of MQG edges incident on u,
// used by the content-score match function (Eq. 6).
func (m *MQG) IncidentCount(u graph.NodeID) int {
	n := 0
	for _, e := range m.Sub.Edges {
		if e.Src == u || e.Dst == u {
			n++
		}
	}
	return n
}

// VirtualNode returns the virtual entity node standing for tuple slot `slot`
// (0-based) in a merged MQG. Virtual IDs are negative so they can never
// collide with data-graph nodes and never count as identical node matches
// during content scoring.
func VirtualNode(slot int) graph.NodeID { return graph.NodeID(-1 - slot) }

// IsVirtual reports whether v is a virtual entity node.
func IsVirtual(v graph.NodeID) bool { return v < 0 }

// VirtualSlot returns the tuple slot a virtual node stands for.
func VirtualSlot(v graph.NodeID) int { return int(-1 - v) }

// NodeName renders v for humans: data nodes by entity name, virtual nodes as
// w1, w2, ... as in the paper's Fig. 8.
func NodeName(g *graph.Graph, v graph.NodeID) string {
	if IsVirtual(v) {
		return fmt.Sprintf("w%d", VirtualSlot(v)+1)
	}
	return g.Name(v)
}

// DiscoverCtx runs Alg. 1 over the reduced neighborhood graph: it decomposes
// the graph into core and per-entity subgraphs, greedily trims each to a
// balanced share of the edge budget r, unions the results, and re-weights
// the surviving edges with the depth-discounted Eq. 8. Alg. 1's cost grows
// with the reduced neighborhood, so the weighting and trimming phases check
// ctx between scans; the largest uncancellable chunk is one pass over the
// reduced edges.
func DiscoverCtx(ctx context.Context, st *stats.Stats, reduced *graph.SubGraph, tuple []graph.NodeID, r int) (*MQG, error) {
	if len(tuple) == 0 {
		return nil, errors.New("mqg: empty query tuple")
	}
	if r < 1 {
		return nil, fmt.Errorf("mqg: target size r = %d, need ≥ 1", r)
	}
	if reduced == nil || reduced.NumEdges() == 0 {
		return nil, errors.New("mqg: empty reduced neighborhood graph")
	}
	if !reduced.ContainsAll(tuple) {
		return nil, errors.New("mqg: reduced neighborhood graph does not contain all query entities")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	weights := make([]float64, len(reduced.Edges))
	for i, e := range reduced.Edges {
		weights[i] = st.Weight(e) // Eq. 2 while discovering
	}
	sub, err := discoverWeighted(ctx, reduced, weights, tuple, r)
	if err != nil {
		return nil, err
	}
	m := &MQG{Sub: sub, Tuple: append([]graph.NodeID(nil), tuple...)}
	m.Depths = edgeDepths(sub, tuple)
	m.Weights = make([]float64, len(sub.Edges))
	for i, e := range sub.Edges {
		m.Weights[i] = st.DepthWeight(e, m.Depths[i]) // Eq. 8 for scoring
	}
	return m, nil
}

// discoverWeighted is the weight-agnostic body of Alg. 1, shared by Discover
// and by Merge's trimming step. ctx is checked between per-part trims.
func discoverWeighted(ctx context.Context, reduced *graph.SubGraph, weights []float64, tuple []graph.NodeID, r int) (*graph.SubGraph, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	parts := decompose(reduced, weights, tuple)
	m := r / len(parts) // line 1 of Alg. 1: balanced per-component budget
	if m < 1 {
		m = 1
	}
	var union []graph.Edge
	for _, p := range parts {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ms := greedyTrim(p.edges, p.weights, p.required, m)
		union = append(union, ms.Edges...)
	}
	sub := graph.NewSubGraph(union)
	if !sub.IsWeaklyConnected(tuple) {
		// The decomposition argument guarantees connectivity whenever the
		// reduced graph is connected; this is a defensive fallback that
		// re-runs the greedy over the whole graph as one core.
		sub = greedyTrim(reduced.Edges, weights, tuple, r)
		if !sub.IsWeaklyConnected(tuple) {
			return nil, errors.New("mqg: could not assemble a weakly connected MQG")
		}
	}
	return sub, nil
}

// part is one unit of the divide-and-conquer: an edge set, its weights, and
// the query entities it must keep connected.
type part struct {
	edges    []graph.Edge
	weights  []float64
	required []graph.NodeID
}

// decompose splits the reduced neighborhood graph into the core graph and
// one individual subgraph per query entity (§III-A). Removing the query
// entities leaves components; a component adjacent to exactly one entity
// v_i (plus its attachment edges) forms v_i's individual subgraph — its
// nodes connect to other entities only through v_i. Components adjacent to
// two or more entities, and direct entity-entity edges, form the core.
func decompose(reduced *graph.SubGraph, weights []float64, tuple []graph.NodeID) []part {
	isEntity := make(map[graph.NodeID]bool, len(tuple))
	for _, v := range tuple {
		isEntity[v] = true
	}
	// Union non-entity endpoints to get components of (reduced − entities).
	uf := graph.NewUnionFind()
	for _, e := range reduced.Edges {
		if !isEntity[e.Src] && !isEntity[e.Dst] {
			uf.Union(e.Src, e.Dst)
		}
	}
	// adjacentEntities[rep] = set of entities with an edge into the component.
	adjacentEntities := make(map[graph.NodeID]map[graph.NodeID]bool)
	noteAdjacent := func(compNode, entity graph.NodeID) {
		rep := uf.Find(compNode)
		s, ok := adjacentEntities[rep]
		if !ok {
			s = make(map[graph.NodeID]bool, 2)
			adjacentEntities[rep] = s
		}
		s[entity] = true
	}
	for _, e := range reduced.Edges {
		srcEnt, dstEnt := isEntity[e.Src], isEntity[e.Dst]
		switch {
		case srcEnt && !dstEnt:
			noteAdjacent(e.Dst, e.Src)
		case !srcEnt && dstEnt:
			noteAdjacent(e.Src, e.Dst)
		}
	}
	// Assign each edge to core or to one entity's individual subgraph.
	entityIndex := make(map[graph.NodeID]int, len(tuple))
	for i, v := range tuple {
		entityIndex[v] = i
	}
	core := part{required: tuple}
	indiv := make([]part, len(tuple))
	for i, v := range tuple {
		indiv[i].required = []graph.NodeID{v}
	}
	soleEntity := func(compNode graph.NodeID) (graph.NodeID, bool) {
		s := adjacentEntities[uf.Find(compNode)]
		if len(s) != 1 {
			return 0, false
		}
		//gqbelint:ignore determinism single-element set: the range yields its only key, no order involved
		for v := range s {
			return v, true
		}
		return 0, false
	}
	for i, e := range reduced.Edges {
		srcEnt, dstEnt := isEntity[e.Src], isEntity[e.Dst]
		var owner graph.NodeID
		var individual bool
		switch {
		case srcEnt && dstEnt:
			// direct entity-entity edge: core by definition
		case srcEnt || dstEnt:
			comp := e.Dst
			entity := e.Src
			if dstEnt {
				comp, entity = e.Src, e.Dst
			}
			if v, ok := soleEntity(comp); ok && v == entity {
				owner, individual = v, true
			}
		default:
			if v, ok := soleEntity(e.Src); ok {
				owner, individual = v, true
			}
		}
		if individual {
			j := entityIndex[owner]
			indiv[j].edges = append(indiv[j].edges, e)
			indiv[j].weights = append(indiv[j].weights, weights[i])
		} else {
			core.edges = append(core.edges, e)
			core.weights = append(core.weights, weights[i])
		}
	}
	parts := make([]part, 0, len(tuple)+1)
	if len(core.edges) > 0 {
		parts = append(parts, core)
	}
	for _, p := range indiv {
		if len(p.edges) > 0 {
			parts = append(parts, p)
		}
	}
	return parts
}

// greedyTrim is the greedy search of Alg. 1 lines 7–21: scan edges in
// descending weight order, maintaining weakly connected components
// incrementally, and return M_s — the component containing all required
// entities — for the smallest s with |E(M_s)| = m; failing an exact hit,
// the largest size below m; failing that, the smallest size above m.
// |E(M_s)| is monotone nondecreasing in s, so one forward scan suffices.
func greedyTrim(edges []graph.Edge, weights []float64, required []graph.NodeID, m int) *graph.SubGraph {
	order := make([]int, len(edges))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		i, j := order[a], order[b]
		if weights[i] != weights[j] {
			return weights[i] > weights[j]
		}
		// Deterministic tie-break on edge identity.
		ei, ej := edges[i], edges[j]
		if ei.Src != ej.Src {
			return ei.Src < ej.Src
		}
		if ei.Label != ej.Label {
			return ei.Label < ej.Label
		}
		return ei.Dst < ej.Dst
	})

	uf := graph.NewUnionFind()
	// Seed required nodes so connectivity checks see them even before any
	// of their edges arrive.
	for _, v := range required {
		uf.Find(v)
	}
	sExact, sBelow, sAbove := -1, -1, -1
	sizeBelow := -1
	for s := 1; s <= len(order); s++ {
		uf.AddEdge(edges[order[s-1]])
		if !uf.AllSameSet(required) {
			continue
		}
		size := uf.EdgeCount(required[0])
		switch {
		case size == m:
			sExact = s
		case size < m:
			if size > sizeBelow {
				sizeBelow = size
				sBelow = s
			}
		case size > m:
			sAbove = s
		}
		if sExact >= 0 || sAbove >= 0 {
			break
		}
	}
	s := sExact
	if s < 0 {
		if sBelow >= 0 {
			s = sBelow
		} else {
			s = sAbove
		}
	}
	if s < 0 {
		// Required nodes never became connected; emit nothing.
		return &graph.SubGraph{}
	}
	// Rebuild the component at exactly s edges and extract M_s.
	uf = graph.NewUnionFind()
	for _, v := range required {
		uf.Find(v)
	}
	for i := 0; i < s; i++ {
		uf.AddEdge(edges[order[i]])
	}
	root := uf.Find(required[0])
	var ms []graph.Edge
	for i := 0; i < s; i++ {
		e := edges[order[i]]
		if uf.Find(e.Src) == root {
			ms = append(ms, e)
		}
	}
	// The s2 case ("smallest size above m") can overshoot badly when the
	// final edge merges two already-large components — for multi-entity
	// cores the jump can be several times m, which makes the query lattice
	// intractable downstream. Def. 5 asks for exactly m edges, so prune
	// back: repeatedly drop the lightest edge whose removal keeps the
	// required entities weakly connected (discarding any fragment that
	// splits off), until the budget is met.
	if len(ms) > m {
		ms = pruneBack(ms, weightOf(edges, weights), required, m)
	}
	return graph.NewSubGraph(ms)
}

// weightOf builds an edge→weight lookup for pruneBack.
func weightOf(edges []graph.Edge, weights []float64) map[graph.Edge]float64 {
	w := make(map[graph.Edge]float64, len(edges))
	for i, e := range edges {
		w[e] = weights[i]
	}
	return w
}

// pruneBack trims ms to at most m edges by reverse greedy deletion: at each
// step the lightest edge whose removal leaves the required entities in one
// weakly connected component is deleted (together with any fragment the
// deletion disconnects). If no edge is removable (every deletion would
// disconnect a required entity), the current graph is returned as is.
func pruneBack(ms []graph.Edge, weight map[graph.Edge]float64, required []graph.NodeID, m int) []graph.Edge {
	cur := graph.NewSubGraph(ms)
	for cur.NumEdges() > m {
		// Try candidates in ascending weight order.
		idx := make([]int, len(cur.Edges))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			wa, wb := weight[cur.Edges[idx[a]]], weight[cur.Edges[idx[b]]]
			if wa != wb {
				return wa < wb
			}
			ea, eb := cur.Edges[idx[a]], cur.Edges[idx[b]]
			if ea.Src != eb.Src {
				return ea.Src < eb.Src
			}
			if ea.Label != eb.Label {
				return ea.Label < eb.Label
			}
			return ea.Dst < eb.Dst
		})
		removed := false
		for _, i := range idx {
			comp := cur.WithoutEdge(i).ComponentContaining(required)
			if comp != nil {
				cur = comp
				removed = true
				break
			}
		}
		if !removed {
			break
		}
	}
	return cur.Edges
}

// edgeDepths computes the Eq. 7 depth of every MQG edge: the smallest hop
// distance from either endpoint to any query entity within the MQG, clamped
// to ≥1 (edges incident on an entity have raw depth 0; the clamp keeps
// Eq. 8 finite and gives them maximum weight).
func edgeDepths(sub *graph.SubGraph, tuple []graph.NodeID) []int {
	dist := sub.UndirectedDistances(tuple)
	depths := make([]int, len(sub.Edges))
	for i, e := range sub.Edges {
		d := dist[e.Src]
		if dv := dist[e.Dst]; dv < d {
			d = dv
		}
		if d < 1 {
			d = 1
		}
		depths[i] = d
	}
	return depths
}
