package mqg

import (
	"context"
	"math"
	"testing"

	"gqbe/internal/graph"
	"gqbe/internal/neighborhood"
	"gqbe/internal/stats"
	"gqbe/internal/storage"
	"gqbe/internal/testkg"
)

// fig1MQG runs the full discovery pipeline on the Fig. 1 fixture.
func fig1MQG(t *testing.T, r int, names ...string) (*graph.Graph, *stats.Stats, *MQG) {
	t.Helper()
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	tuple := testkg.Tuple(g, names...)
	nres, err := neighborhood.ExtractCtx(context.Background(), g, tuple, 2)
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	m, err := DiscoverCtx(context.Background(), st, nres.Reduced, tuple, r)
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	return g, st, m
}

func TestDiscoverBasicShape(t *testing.T) {
	g, _, m := fig1MQG(t, 10, "Jerry Yang", "Yahoo!")
	if len(m.Sub.Edges) == 0 {
		t.Fatal("empty MQG")
	}
	if len(m.Sub.Edges) > 12 {
		t.Errorf("MQG has %d edges, expected close to r=10", len(m.Sub.Edges))
	}
	tuple := testkg.Tuple(g, "Jerry Yang", "Yahoo!")
	if !m.Sub.IsWeaklyConnected(tuple) {
		t.Error("MQG is not weakly connected over the query entities")
	}
	if len(m.Weights) != len(m.Sub.Edges) || len(m.Depths) != len(m.Sub.Edges) {
		t.Error("weights/depths not parallel to edges")
	}
}

func TestDiscoverKeepsFoundedEdge(t *testing.T) {
	// The founded edge between the two query entities is the single most
	// important feature of ⟨Jerry Yang, Yahoo!⟩ and must survive.
	g, _, m := fig1MQG(t, 10, "Jerry Yang", "Yahoo!")
	l, _ := g.Label("founded")
	want := graph.Edge{Src: g.MustNode("Jerry Yang"), Label: l, Dst: g.MustNode("Yahoo!")}
	if m.WeightOf(want) == 0 {
		t.Errorf("MQG lost the founded edge; edges: %s", m.Sub.Format(g))
	}
}

func TestDiscoverSmallBudget(t *testing.T) {
	g, _, m := fig1MQG(t, 3, "Jerry Yang", "Yahoo!")
	tuple := testkg.Tuple(g, "Jerry Yang", "Yahoo!")
	if !m.Sub.IsWeaklyConnected(tuple) {
		t.Error("small-budget MQG is disconnected")
	}
	if len(m.Sub.Edges) > 6 {
		t.Errorf("small budget r=3 produced %d edges", len(m.Sub.Edges))
	}
}

func TestDiscoverSingleEntity(t *testing.T) {
	g, _, m := fig1MQG(t, 6, "Stanford")
	if !m.Sub.HasNode(g.MustNode("Stanford")) {
		t.Error("single-entity MQG does not contain the entity")
	}
	if !m.Sub.IsWeaklyConnected(testkg.Tuple(g, "Stanford")) {
		t.Error("single-entity MQG disconnected")
	}
}

func TestDepthsClampedAndOrdered(t *testing.T) {
	g, _, m := fig1MQG(t, 12, "Jerry Yang", "Yahoo!")
	tuple := testkg.Tuple(g, "Jerry Yang", "Yahoo!")
	dist := m.Sub.UndirectedDistances(tuple)
	for i, e := range m.Sub.Edges {
		if m.Depths[i] < 1 {
			t.Fatalf("depth %d < 1 for edge %d", m.Depths[i], i)
		}
		raw := dist[e.Src]
		if dv := dist[e.Dst]; dv < raw {
			raw = dv
		}
		want := raw
		if want < 1 {
			want = 1
		}
		if m.Depths[i] != want {
			t.Errorf("edge %d depth = %d, want %d", i, m.Depths[i], want)
		}
	}
}

func TestWeightsUseEq8(t *testing.T) {
	_, st, m := fig1MQG(t, 12, "Jerry Yang", "Yahoo!")
	for i, e := range m.Sub.Edges {
		want := st.DepthWeight(e, m.Depths[i])
		if math.Abs(m.Weights[i]-want) > 1e-12 {
			t.Errorf("edge %d weight = %v, want Eq.8 value %v", i, m.Weights[i], want)
		}
	}
}

func TestTotalWeight(t *testing.T) {
	_, _, m := fig1MQG(t, 10, "Jerry Yang", "Yahoo!")
	sum := 0.0
	for _, w := range m.Weights {
		sum += w
	}
	if math.Abs(m.TotalWeight()-sum) > 1e-12 {
		t.Errorf("TotalWeight = %v, want %v", m.TotalWeight(), sum)
	}
}

func TestIncidentCount(t *testing.T) {
	g, _, m := fig1MQG(t, 10, "Jerry Yang", "Yahoo!")
	jy := g.MustNode("Jerry Yang")
	n := 0
	for _, e := range m.Sub.Edges {
		if e.Src == jy || e.Dst == jy {
			n++
		}
	}
	if got := m.IncidentCount(jy); got != n {
		t.Errorf("IncidentCount = %d, want %d", got, n)
	}
}

func TestDiscoverErrors(t *testing.T) {
	g := testkg.Fig1()
	st := stats.New(storage.Build(g))
	tuple := testkg.Tuple(g, "Jerry Yang", "Yahoo!")
	nres, err := neighborhood.ExtractCtx(context.Background(), g, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DiscoverCtx(context.Background(), st, nres.Reduced, nil, 10); err == nil {
		t.Error("empty tuple accepted")
	}
	if _, err := DiscoverCtx(context.Background(), st, nres.Reduced, tuple, 0); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := DiscoverCtx(context.Background(), st, &graph.SubGraph{}, tuple, 10); err == nil {
		t.Error("empty reduced graph accepted")
	}
	other := testkg.Tuple(g, "Redmond")
	if _, err := DiscoverCtx(context.Background(), st, nres.Reduced, other, 10); err == nil {
		t.Error("tuple outside the reduced graph accepted")
	}
}

func TestGreedyTrimExactBudget(t *testing.T) {
	// A star around node 0 with strictly decreasing weights must trim to
	// exactly m highest-weight edges.
	var edges []graph.Edge
	var weights []float64
	for i := 1; i <= 8; i++ {
		edges = append(edges, graph.Edge{Src: 0, Label: 0, Dst: graph.NodeID(i)})
		weights = append(weights, float64(10-i))
	}
	ms := greedyTrim(edges, weights, []graph.NodeID{0}, 3)
	if len(ms.Edges) != 3 {
		t.Fatalf("trim produced %d edges, want 3", len(ms.Edges))
	}
	for _, e := range ms.Edges {
		if e.Dst > 3 {
			t.Errorf("trim kept low-weight edge to %d", e.Dst)
		}
	}
}

func TestGreedyTrimPrefersBelowWhenNoExact(t *testing.T) {
	// Two heavy edges arrive disconnected from the entity; connecting the
	// entity brings 1 edge, then a merge jumps the component from 1 to 4
	// edges. With m=3 there is no exact hit: sizes go 1 → 4, so the rule
	// picks the largest below m (size 1)... unless s1 does not exist.
	edges := []graph.Edge{
		{Src: 10, Label: 0, Dst: 11}, // w=9, away from entity
		{Src: 11, Label: 0, Dst: 12}, // w=8, away from entity
		{Src: 0, Label: 0, Dst: 1},   // w=7, touches entity 0
		{Src: 1, Label: 0, Dst: 10},  // w=6, merges everything: size 4
	}
	weights := []float64{9, 8, 7, 6}
	ms := greedyTrim(edges, weights, []graph.NodeID{0}, 3)
	if len(ms.Edges) != 1 {
		t.Fatalf("want the size-1 M_s (largest below m), got %d edges", len(ms.Edges))
	}
	if ms.Edges[0] != edges[2] {
		t.Errorf("wrong edge kept: %v", ms.Edges[0])
	}
}

func TestGreedyTrimTakesAboveWhenNothingBelow(t *testing.T) {
	// The first time the required pair connects, the component already has
	// 3 edges; with m=2 there is no exact and no below, so s2 (above) wins.
	edges := []graph.Edge{
		{Src: 0, Label: 0, Dst: 5},  // w=9
		{Src: 5, Label: 0, Dst: 6},  // w=8
		{Src: 6, Label: 0, Dst: 1},  // w=7 — connects 0 and 1 with 3 edges
		{Src: 0, Label: 1, Dst: 99}, // w=1
	}
	weights := []float64{9, 8, 7, 1}
	ms := greedyTrim(edges, weights, []graph.NodeID{0, 1}, 2)
	if len(ms.Edges) != 3 {
		t.Fatalf("want the size-3 M_s (smallest above m), got %d", len(ms.Edges))
	}
}

func TestGreedyTrimDisconnected(t *testing.T) {
	edges := []graph.Edge{{Src: 0, Label: 0, Dst: 1}}
	ms := greedyTrim(edges, []float64{1}, []graph.NodeID{0, 7}, 2)
	if len(ms.Edges) != 0 {
		t.Errorf("unconnectable requirement should yield empty M_s, got %d edges", len(ms.Edges))
	}
}

func TestGreedyTrimExcludesForeignComponents(t *testing.T) {
	// Heavy edges in a foreign component must not leak into M_s.
	edges := []graph.Edge{
		{Src: 50, Label: 0, Dst: 51}, // w=9, foreign
		{Src: 0, Label: 0, Dst: 1},   // w=5
		{Src: 1, Label: 0, Dst: 2},   // w=4
	}
	weights := []float64{9, 5, 4}
	ms := greedyTrim(edges, weights, []graph.NodeID{0}, 2)
	for _, e := range ms.Edges {
		if e.Src == 50 {
			t.Error("foreign component edge leaked into M_s")
		}
	}
	if len(ms.Edges) != 2 {
		t.Errorf("got %d edges, want 2", len(ms.Edges))
	}
}

func TestDecomposeSeparatesCoreAndIndividual(t *testing.T) {
	// Entities 0 and 1; 0—2—1 is the core path; 3 hangs off 0 only; 4 hangs
	// off 1 only.
	edges := []graph.Edge{
		{Src: 0, Label: 0, Dst: 2},
		{Src: 2, Label: 0, Dst: 1},
		{Src: 3, Label: 1, Dst: 0},
		{Src: 1, Label: 1, Dst: 4},
	}
	weights := []float64{1, 1, 1, 1}
	parts := decompose(graph.NewSubGraph(edges), weights, []graph.NodeID{0, 1})
	if len(parts) != 3 {
		t.Fatalf("got %d parts, want core + 2 individuals", len(parts))
	}
	core := parts[0]
	if len(core.edges) != 2 {
		t.Errorf("core has %d edges, want 2", len(core.edges))
	}
	for _, p := range parts[1:] {
		if len(p.edges) != 1 {
			t.Errorf("individual part has %d edges, want 1", len(p.edges))
		}
	}
}

func TestDecomposeEntityEntityEdgeIsCore(t *testing.T) {
	edges := []graph.Edge{
		{Src: 0, Label: 0, Dst: 1},
		{Src: 0, Label: 1, Dst: 9},
	}
	weights := []float64{1, 1}
	parts := decompose(graph.NewSubGraph(edges), weights, []graph.NodeID{0, 1})
	if len(parts[0].edges) != 1 || parts[0].edges[0] != edges[0] {
		t.Errorf("entity-entity edge not in core: %+v", parts[0].edges)
	}
}

func TestDecomposeMultiEntityComponentIsCore(t *testing.T) {
	// Component {2,3} touches both entities → all of it is core, including
	// the interior edge.
	edges := []graph.Edge{
		{Src: 0, Label: 0, Dst: 2},
		{Src: 2, Label: 0, Dst: 3},
		{Src: 3, Label: 0, Dst: 1},
	}
	weights := []float64{1, 1, 1}
	parts := decompose(graph.NewSubGraph(edges), weights, []graph.NodeID{0, 1})
	if len(parts) != 1 {
		t.Fatalf("got %d parts, want 1 (all core)", len(parts))
	}
	if len(parts[0].edges) != 3 {
		t.Errorf("core has %d edges, want 3", len(parts[0].edges))
	}
}

func TestDiscoverBalancedAcrossEntities(t *testing.T) {
	// One entity has many heavy edges, the other few light ones; the
	// divide-and-conquer must still represent both sides.
	g := graph.New()
	g.AddEdge("A", "link", "B")
	for i := 0; i < 10; i++ {
		g.AddEdge("A", "rareA", "a"+string(rune('0'+i)))
	}
	g.AddEdge("B", "rareB", "b0")
	g.AddEdge("B", "rareB2", "b1")
	st := stats.New(storage.Build(g))
	tuple := []graph.NodeID{g.MustNode("A"), g.MustNode("B")}
	nres, err := neighborhood.ExtractCtx(context.Background(), g, tuple, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, err := DiscoverCtx(context.Background(), st, nres.Reduced, tuple, 9)
	if err != nil {
		t.Fatal(err)
	}
	b := g.MustNode("B")
	bCount := 0
	for _, e := range m.Sub.Edges {
		if e.Src == b || e.Dst == b {
			bCount++
		}
	}
	if bCount < 2 {
		t.Errorf("B has only %d incident MQG edges; balance failed: %s", bCount, m.Sub.Format(g))
	}
}
