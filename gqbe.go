// Package gqbe is a Go implementation of GQBE — Graph Query By Example
// (Jayaram, Khan, Li, Yan, Elmasri: "Querying Knowledge Graphs by Example
// Entity Tuples", ICDE / arXiv:1311.2100).
//
// GQBE answers queries over a knowledge graph from nothing but an example
// entity tuple. Given ⟨Jerry Yang, Yahoo!⟩ over a graph of people and
// companies, it returns ranked tuples whose entities participate in similar
// relationships — ⟨Steve Wozniak, Apple Inc.⟩, ⟨Sergey Brin, Google⟩ — with
// no query language, schema knowledge, or query graph required.
//
// Basic use:
//
//	eng, err := gqbe.LoadFile("kg.tsv") // tab-separated subject/predicate/object
//	res, err := eng.Query([]string{"Jerry Yang", "Yahoo!"}, nil)
//	for _, a := range res.Answers {
//	    fmt.Println(a.Entities, a.Score)
//	}
//
// Multiple example tuples sharpen the intent (§III-D of the paper):
//
//	res, err := eng.QueryMulti([][]string{
//	    {"Jerry Yang", "Yahoo!"},
//	    {"Steve Wozniak", "Apple Inc."},
//	}, nil)
//
// The pipeline mirrors the paper: the engine derives a weighted maximal
// query graph capturing the tuple's important relationships, models the
// space of approximate matches as a query lattice, and explores the lattice
// best-first, evaluating query graphs as hash joins and stopping as soon as
// the top-k answers are provably found.
package gqbe

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"gqbe/internal/core"
	"gqbe/internal/graph"
	"gqbe/internal/topk"
	"gqbe/internal/triples"
)

// ErrUnknownEntity is wrapped by query errors when a query tuple names an
// entity absent from the knowledge graph; test with errors.Is.
var ErrUnknownEntity = errors.New("unknown entity")

// Options tunes a query. Nil or zero fields select the paper's defaults.
type Options struct {
	// K is the number of answers to return (default 10).
	K int
	// KPrime is the candidate pool ranked by structure score before the
	// final content-aware re-ranking (default max(100, 4K); §V-B of the
	// paper found k′≈100 best for k in 10..25).
	KPrime int
	// Depth is the neighborhood radius d in edges (default 2).
	Depth int
	// MQGSize is the maximal-query-graph edge budget r (default 15).
	MQGSize int
	// MaxRows bounds the intermediate join size per query graph; queries
	// exceeding it fail rather than exhaust memory (default 5M rows).
	MaxRows int
	// MaxEvaluations caps evaluated lattice nodes (default unlimited).
	MaxEvaluations int
	// Parallelism is the number of concurrent evaluators the lattice search
	// fans out to (default 1 = the sequential search; negative selects
	// GOMAXPROCS). The ranked answers and every reported statistic are
	// bit-identical at any setting — this is purely a latency knob — but
	// peak join memory scales with it: each worker materializes up to
	// MaxRows rows at once.
	Parallelism int
	// Tracer, when non-nil, records the query's per-stage span tree and the
	// search's per-node evaluation table (see NewTracer), and populates
	// Result.MQG. Tracing never changes answers or Stats, and it is
	// excluded from Normalized — a traced query has the same cache identity
	// as an untraced one.
	Tracer *Tracer
}

// Normalized returns a copy of o with the engine's defaults made explicit —
// the exact values a query with these options runs with. Nil receives all
// defaults. Two Options that normalize equal describe the same query, which
// makes the normalized form a sound result-cache key component.
func (o *Options) Normalized() Options {
	c := o.toCore().Normalize()
	return Options{
		K:              c.K,
		KPrime:         c.KPrime,
		Depth:          c.Depth,
		MQGSize:        c.MQGSize,
		MaxRows:        c.MaxRows,
		MaxEvaluations: c.MaxEvaluations,
		Parallelism:    c.Parallelism,
	}
}

func (o *Options) toCore() core.Options {
	if o == nil {
		return core.Options{}
	}
	return core.Options{
		K:              o.K,
		KPrime:         o.KPrime,
		Depth:          o.Depth,
		MQGSize:        o.MQGSize,
		MaxRows:        o.MaxRows,
		MaxEvaluations: o.MaxEvaluations,
		Parallelism:    o.Parallelism,
		Tracer:         o.Tracer,
	}
}

// Answer is one ranked answer tuple.
type Answer struct {
	// Entities are the answer's entity names, positionally matching the
	// query tuple.
	Entities []string
	// Score is the answer's similarity score (Eq. 1/5 of the paper);
	// higher is better. Scores are comparable within one result only.
	Score float64
	// Key is the answer's deterministic tie-break key (the tuple's node IDs
	// in decimal, comma-joined). Equal-score answers are ordered by Key
	// ascending, so re-merging ranked lists from engines built from the same
	// input — a shard fleet — under (Score desc, Key asc) reproduces the
	// single-engine order exactly. Keys are comparable only between engines
	// built from the same input.
	Key string
}

// Stats reports how a query was executed.
type Stats struct {
	// Discovery is the time spent deriving the maximal query graph(s).
	Discovery time.Duration
	// Merge is the time spent merging MQGs (multi-tuple queries only).
	Merge time.Duration
	// Processing is the time spent searching the query lattice.
	Processing time.Duration
	// MQGEdges is the size of the derived (merged) maximal query graph.
	MQGEdges int
	// NodesEvaluated is the number of lattice query graphs evaluated.
	NodesEvaluated int
	// NullNodes is the number of evaluated query graphs with no answers
	// (each one triggers the lattice pruning of Alg. 3).
	NullNodes int
	// NodesGenerated is the number of distinct lattice nodes the search
	// ever admitted as candidates.
	NodesGenerated int
	// NodesPruned is the number of candidates discarded unevaluated because
	// a null node subsumed them.
	NodesPruned int
	// FrontierRecomputes is the number of upper-frontier recomputations
	// (Alg. 3) the search performed.
	FrontierRecomputes int
	// Stopped says why the lattice search returned: "topk-proven" (the
	// top-k answers were provably final), "frontier-exhausted" (the whole
	// reachable lattice was explored), "max-evaluations" (the
	// MaxEvaluations safety valve fired), or — for interrupted queries that
	// still produced a partial result — "deadline" or "canceled".
	Stopped string
	// Terminated reports whether the top-k proof stopped the search early.
	Terminated bool
}

// Result is a ranked answer list.
type Result struct {
	Answers []Answer
	Stats   Stats
	// MQG is a display rendering of the derived maximal query graph.
	// Populated only for traced queries (Options.Tracer non-nil); untraced
	// serving-path queries skip the rendering cost.
	MQG *MQGInfo
}

// Engine answers query-by-example queries over one immutable knowledge
// graph. It is safe for concurrent use once built.
type Engine struct {
	eng *core.Engine
}

// Load reads a knowledge graph from tab-separated triples
// (subject\tpredicate\tobject per line, '#' comments allowed) and
// preprocesses it for querying.
func Load(r io.Reader) (*Engine, error) {
	start := time.Now()
	g, err := triples.LoadGraph(r)
	if err != nil {
		return nil, fmt.Errorf("gqbe: %w", err)
	}
	return fromGraphTimed(g, 1, start)
}

// LoadFile is Load over a file path.
func LoadFile(path string) (*Engine, error) {
	return LoadFileSharded(path, 1)
}

// LoadFileSharded is LoadFile with the offline store construction spread
// across `shards` concurrent workers (0 or negative selects GOMAXPROCS, 1
// builds sequentially). The resulting engine is bit-identical to LoadFile's
// regardless of the shard count; only the build time changes.
func LoadFileSharded(path string, shards int) (*Engine, error) {
	if shards <= 0 {
		shards = -1 // core.BuildOptions: negative selects GOMAXPROCS
	}
	start := time.Now()
	g, err := triples.LoadGraphFile(path)
	if err != nil {
		return nil, fmt.Errorf("gqbe: %w", err)
	}
	return fromGraphTimed(g, shards, start)
}

// LoadSnapshotFile restores a preprocessed engine from a binary snapshot
// written by WriteSnapshotFile, skipping triple parsing and index
// construction entirely. Corrupt or incompatible snapshots fail with a
// typed error (never a panic); callers typically fall back to LoadFile.
func LoadSnapshotFile(path string) (*Engine, error) {
	eng, err := core.LoadSnapshotFile(path)
	if err != nil {
		return nil, fmt.Errorf("gqbe: %w", err)
	}
	return &Engine{eng: eng}, nil
}

// OpenSnapshotMapped restores a preprocessed engine by memory-mapping the
// snapshot file instead of decoding it onto the heap: the graph's name blob
// and every index column become zero-copy views of the mapping. Opening is
// O(sections) — on large graphs typically an order of magnitude faster than
// LoadSnapshotFile and dramatically faster than re-parsing triples — and the
// data pages are shared with the OS page cache, so multiple processes
// serving the same snapshot pay its memory cost once.
//
// Integrity matches LoadSnapshotFile: the file's CRC-32C trailer is
// verified before the engine is returned, and corruption fails with a typed
// error, never a panic. On platforms without mmap support the open fails
// (callers fall back to LoadSnapshotFile).
//
// A mapped engine holds the file mapping until Close. Answers and traced
// MQG renderings are safe to retain after Close — strings that would alias
// the mapping are cloned at the API boundary.
func OpenSnapshotMapped(path string) (*Engine, error) {
	eng, err := core.OpenSnapshotMapped(path)
	if err != nil {
		return nil, fmt.Errorf("gqbe: %w", err)
	}
	return &Engine{eng: eng}, nil
}

// Close releases the snapshot mapping backing an engine from
// OpenSnapshotMapped; for heap-built engines it is a no-op. Idempotent.
// After Close the engine must not serve queries — every borrowed column
// dangles. Callers that hot-swap engines must drain in-flight queries on
// the old engine first (the bundled server does this with per-generation
// reference counts).
func (e *Engine) Close() error {
	if err := e.eng.Close(); err != nil {
		return fmt.Errorf("gqbe: %w", err)
	}
	return nil
}

// Closed reports whether Close has been called on this engine.
func (e *Engine) Closed() bool { return e.eng.Closed() }

// Mapped reports whether this engine borrows a live snapshot mapping
// (OpenSnapshotMapped) rather than owning heap-decoded state.
func (e *Engine) Mapped() bool { return e.eng.Mapped() }

// WriteSnapshotFile serializes the engine's preprocessed state (graph and
// indexed store) to path as a versioned, checksummed binary snapshot,
// written atomically (temp file + rename). Regenerate the snapshot whenever
// the source triples change; the daemon's -snapshot-write flag automates
// this.
func (e *Engine) WriteSnapshotFile(path string) error {
	if err := e.eng.WriteSnapshotFile(path); err != nil {
		return fmt.Errorf("gqbe: %w", err)
	}
	return nil
}

// WriteSnapshot is WriteSnapshotFile over an io.Writer.
func (e *Engine) WriteSnapshot(w io.Writer) error {
	if err := e.eng.WriteSnapshot(w); err != nil {
		return fmt.Errorf("gqbe: %w", err)
	}
	return nil
}

// LoadSnapshot is LoadSnapshotFile over an io.Reader.
func LoadSnapshot(r io.Reader) (*Engine, error) {
	eng, err := core.ReadSnapshot(r)
	if err != nil {
		return nil, fmt.Errorf("gqbe: %w", err)
	}
	return &Engine{eng: eng}, nil
}

// BuildInfo reports how an engine's offline preprocessing ran.
type BuildInfo struct {
	// BuildTime is the wall time of preprocessing (for snapshot engines,
	// the snapshot load).
	BuildTime time.Duration
	// Shards is the worker count the store was built with (1 for
	// sequential builds and snapshot loads).
	Shards int
	// FromSnapshot reports whether the engine was restored from a binary
	// snapshot rather than built from triples.
	FromSnapshot bool
	// Mapped reports whether the snapshot is memory-mapped zero-copy
	// (OpenSnapshotMapped) rather than decoded onto the heap.
	Mapped bool
	// MappedBytes is the size of the snapshot mapping when Mapped, else 0.
	MappedBytes int64
}

// BuildInfo reports how this engine's offline preprocessing ran.
func (e *Engine) BuildInfo() BuildInfo {
	info := e.eng.Info()
	return BuildInfo{
		BuildTime:    info.Duration,
		Shards:       info.Shards,
		FromSnapshot: info.FromSnapshot,
		Mapped:       info.Mapped,
		MappedBytes:  info.MappedBytes,
	}
}

// Builder assembles a knowledge graph triple by triple, for programmatic
// construction instead of file loading.
type Builder struct {
	g    *graph.Graph
	done bool
}

// NewBuilder returns an empty graph builder.
func NewBuilder() *Builder { return &Builder{g: graph.New()} }

// Add inserts the triple (subject, predicate, object); duplicates are
// ignored. Add panics if called after Build.
func (b *Builder) Add(subject, predicate, object string) *Builder {
	if b.done {
		panic("gqbe: Builder used after Build")
	}
	b.g.AddEdge(subject, predicate, object)
	return b
}

// Build finalizes the graph and preprocesses the engine. The builder must
// not be reused.
func (b *Builder) Build() (*Engine, error) {
	if b.done {
		return nil, errors.New("gqbe: Builder already built")
	}
	b.done = true
	start := time.Now()
	b.g.SortAdjacency()
	return fromGraphTimed(b.g, 1, start)
}

func fromGraph(g *graph.Graph, shards int) (*Engine, error) {
	if g.NumEdges() == 0 {
		return nil, errors.New("gqbe: empty knowledge graph")
	}
	return &Engine{eng: core.NewEngineOpts(g, core.BuildOptions{Shards: shards})}, nil
}

// fromGraphTimed is fromGraph with the recorded build time widened to start
// at `start` — the loaders pass their pre-parse timestamp so BuildTime
// covers parse + intern + sort + build, staying comparable with snapshot
// loads (which time everything they do).
func fromGraphTimed(g *graph.Graph, shards int, start time.Time) (*Engine, error) {
	e, err := fromGraph(g, shards)
	if err != nil {
		return nil, err
	}
	e.eng.SetBuildDuration(time.Since(start))
	return e, nil
}

// NumEntities returns the number of entity nodes in the graph.
func (e *Engine) NumEntities() int { return e.eng.Graph().NumNodes() }

// NumFacts returns the number of edges (triples) in the graph.
func (e *Engine) NumFacts() int { return e.eng.Graph().NumEdges() }

// NumPredicates returns the number of distinct edge labels.
func (e *Engine) NumPredicates() int { return e.eng.Graph().NumLabels() }

// HasEntity reports whether an entity name exists in the graph.
func (e *Engine) HasEntity(name string) bool {
	_, ok := e.eng.Graph().Node(name)
	return ok
}

// Query answers a single example-tuple query: entities names the example
// entities (1–3 is typical), and the result holds the top-k most similar
// answer tuples, best first. The example tuple itself is never returned.
func (e *Engine) Query(entities []string, opts *Options) (*Result, error) {
	return e.QueryCtx(context.Background(), entities, opts)
}

// QueryCtx is Query under a context. The entire pipeline — query graph
// discovery, lattice construction, and the best-first search with its hash
// joins — observes ctx, so callers can bound a query with a deadline or
// cancel a runaway search; the query then fails with an error wrapping
// ctx.Err() (context.DeadlineExceeded or context.Canceled). When the
// interruption strikes inside the lattice search, the error is accompanied
// by a non-nil partial Result — the answers found so far, with Stats.Stopped
// set to "deadline" or "canceled" — so anytime consumers can use both.
func (e *Engine) QueryCtx(ctx context.Context, entities []string, opts *Options) (*Result, error) {
	tuple, err := e.resolve(entities)
	if err != nil {
		return nil, err
	}
	res, err := e.eng.QueryCtx(ctx, tuple, opts.toCore())
	if res == nil {
		return nil, fmt.Errorf("gqbe: %w", err)
	}
	out := e.wrap(res, opts != nil && opts.Tracer != nil)
	if err != nil {
		return out, fmt.Errorf("gqbe: %w", err)
	}
	return out, nil
}

// QueryMulti answers a multi-tuple query: all example tuples (same arity)
// are combined into one merged query intent, which usually sharpens results
// (§III-D, Table V of the paper).
func (e *Engine) QueryMulti(tuples [][]string, opts *Options) (*Result, error) {
	return e.QueryMultiCtx(context.Background(), tuples, opts)
}

// QueryMultiCtx is QueryMulti under a context, with the same cancellation
// semantics as QueryCtx.
func (e *Engine) QueryMultiCtx(ctx context.Context, tuples [][]string, opts *Options) (*Result, error) {
	if len(tuples) == 0 {
		return nil, errors.New("gqbe: no query tuples")
	}
	resolved := make([][]graph.NodeID, len(tuples))
	for i, t := range tuples {
		tuple, err := e.resolve(t)
		if err != nil {
			return nil, err
		}
		resolved[i] = tuple
	}
	res, err := e.eng.QueryMultiCtx(ctx, resolved, opts.toCore())
	if res == nil {
		return nil, fmt.Errorf("gqbe: %w", err)
	}
	out := e.wrap(res, opts != nil && opts.Tracer != nil)
	if err != nil {
		return out, fmt.Errorf("gqbe: %w", err)
	}
	return out, nil
}

func (e *Engine) resolve(entities []string) ([]graph.NodeID, error) {
	if len(entities) == 0 {
		return nil, errors.New("gqbe: empty query tuple")
	}
	tuple := make([]graph.NodeID, len(entities))
	for i, name := range entities {
		id, ok := e.eng.Graph().Node(name)
		if !ok {
			return nil, fmt.Errorf("gqbe: %w %q", ErrUnknownEntity, name)
		}
		tuple[i] = id
	}
	return tuple, nil
}

func (e *Engine) wrap(res *core.Result, withMQG bool) *Result {
	out := &Result{
		Stats: Stats{
			Discovery:          res.Stats.Discovery,
			Merge:              res.Stats.Merge,
			Processing:         res.Stats.Processing,
			MQGEdges:           res.Stats.MQGEdges,
			NodesEvaluated:     res.Stats.NodesEvaluated,
			NullNodes:          res.Stats.NullNodes,
			NodesGenerated:     res.Stats.NodesGenerated,
			NodesPruned:        res.Stats.NodesPruned,
			FrontierRecomputes: res.Stats.FrontierRecomputes,
			Stopped:            string(res.Stats.Stopped),
			// Terminated is derived here, once: the engine layers carry only
			// the Stopped reason.
			Terminated: res.Stats.Stopped == topk.StopProven,
		},
	}
	if withMQG && res.MQG != nil {
		out.MQG = e.mqgInfo(res.MQG)
	}
	for _, a := range res.Answers {
		out.Answers = append(out.Answers, Answer{
			Entities: e.eng.AnswerNames(a),
			Score:    a.Score,
			Key:      topk.TupleKey(a.Tuple),
		})
	}
	return out
}

// WithShard returns a copy of the engine that answers as shard index of a
// count-shard fleet. The copy shares all graph data (nothing is duplicated);
// its queries run the identical search but return only the answers whose
// pivot entity this shard owns, so a fleet of count such engines — one per
// index — partitions every result list, and merging the per-shard lists
// under (Score desc, Key asc) reproduces the unsharded ranking bit for bit.
// count <= 1 returns an unsharded copy; an index outside [0, count) errors.
// Shard identity is a deployment property like Options.Parallelism, never a
// per-query knob.
func (e *Engine) WithShard(index, count int) (*Engine, error) {
	eng, err := e.eng.WithShard(index, count)
	if err != nil {
		return nil, fmt.Errorf("gqbe: %w", err)
	}
	return &Engine{eng: eng}, nil
}

// Shard reports the engine's fleet shard identity; count is 0 for an
// unsharded engine. Engines loaded from a shard snapshot (cmd/kgshard)
// carry the identity recorded in the file.
func (e *Engine) Shard() (index, count int) { return e.eng.Shard() }
