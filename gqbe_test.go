package gqbe

import (
	"fmt"
	"strings"
	"testing"

	"gqbe/internal/testkg"
)

func fig1Engine(t *testing.T) *Engine {
	t.Helper()
	b := NewBuilder()
	for _, tr := range testkg.Fig1Triples() {
		b.Add(tr[0], tr[1], tr[2])
	}
	e, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return e
}

func TestBuilderAndCounts(t *testing.T) {
	e := fig1Engine(t)
	if e.NumEntities() == 0 || e.NumFacts() != 28 || e.NumPredicates() == 0 {
		t.Errorf("counts wrong: %d entities, %d facts, %d predicates",
			e.NumEntities(), e.NumFacts(), e.NumPredicates())
	}
	if !e.HasEntity("Jerry Yang") || e.HasEntity("Nobody") {
		t.Error("HasEntity wrong")
	}
}

func TestLoadFromReader(t *testing.T) {
	var b strings.Builder
	for _, tr := range testkg.Fig1Triples() {
		fmt.Fprintf(&b, "%s\t%s\t%s\n", tr[0], tr[1], tr[2])
	}
	e, err := Load(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if e.NumFacts() != 28 {
		t.Errorf("NumFacts = %d", e.NumFacts())
	}
}

func TestLoadEmptyGraphFails(t *testing.T) {
	if _, err := Load(strings.NewReader("")); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestQueryPublicAPI(t *testing.T) {
	e := fig1Engine(t)
	res, err := e.Query([]string{"Jerry Yang", "Yahoo!"}, &Options{K: 10, KPrime: 10, MQGSize: 10})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	found := false
	for _, a := range res.Answers {
		if strings.Join(a.Entities, "|") == "Steve Wozniak|Apple Inc." {
			found = true
		}
		if strings.Join(a.Entities, "|") == "Jerry Yang|Yahoo!" {
			t.Error("query tuple returned")
		}
	}
	if !found {
		t.Error("Wozniak/Apple missing")
	}
	if res.Stats.MQGEdges == 0 || res.Stats.NodesEvaluated == 0 {
		t.Errorf("stats empty: %+v", res.Stats)
	}
}

func TestQueryNilOptionsDefaults(t *testing.T) {
	e := fig1Engine(t)
	res, err := e.Query([]string{"Jerry Yang", "Yahoo!"}, nil)
	if err != nil {
		t.Fatalf("Query with nil options: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Error("no answers with defaults")
	}
}

func TestQueryMultiPublicAPI(t *testing.T) {
	e := fig1Engine(t)
	res, err := e.QueryMulti([][]string{
		{"Jerry Yang", "Yahoo!"},
		{"Steve Wozniak", "Apple Inc."},
	}, &Options{K: 10, KPrime: 10, MQGSize: 12})
	if err != nil {
		t.Fatalf("QueryMulti: %v", err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	for _, a := range res.Answers {
		s := strings.Join(a.Entities, "|")
		if s == "Jerry Yang|Yahoo!" || s == "Steve Wozniak|Apple Inc." {
			t.Errorf("input tuple %s returned", s)
		}
	}
}

func TestQueryErrorsPublic(t *testing.T) {
	e := fig1Engine(t)
	if _, err := e.Query(nil, nil); err == nil {
		t.Error("empty tuple accepted")
	}
	if _, err := e.Query([]string{"No Such Entity"}, nil); err == nil {
		t.Error("unknown entity accepted")
	}
	if _, err := e.QueryMulti(nil, nil); err == nil {
		t.Error("no tuples accepted")
	}
	if _, err := e.QueryMulti([][]string{{"Jerry Yang", "Yahoo!"}, {"Missing"}}, nil); err == nil {
		t.Error("unknown entity in multi accepted")
	}
}

func TestBuilderMisuse(t *testing.T) {
	b := NewBuilder()
	b.Add("a", "p", "b")
	if _, err := b.Build(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Error("double Build accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add after Build did not panic")
		}
	}()
	b.Add("x", "p", "y")
}

func TestScoresDescending(t *testing.T) {
	e := fig1Engine(t)
	res, err := e.Query([]string{"Jerry Yang", "Yahoo!"}, &Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Answers); i++ {
		if res.Answers[i-1].Score < res.Answers[i].Score {
			t.Fatal("answers not sorted by score")
		}
	}
}
