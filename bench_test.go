package gqbe

// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section (§VI), plus micro-benchmarks for the pipeline
// stages. Each experiment bench re-runs the full driver per iteration (the
// suite's memoization is reset), so `go test -bench=.` regenerates every
// reported artifact; EXPERIMENTS.md records the paper-vs-measured shapes.

import (
	"context"
	"sync"
	"testing"

	"gqbe/internal/core"
	"gqbe/internal/experiments"
	"gqbe/internal/graph"
	"gqbe/internal/kgsynth"
	"gqbe/internal/lattice"
	"gqbe/internal/mqg"
	"gqbe/internal/neighborhood"
	"gqbe/internal/stats"
	"gqbe/internal/storage"
	"gqbe/internal/topk"
)

var (
	suiteOnce sync.Once
	suiteInst *experiments.Suite
)

// benchSuite builds the shared datasets and engines once; individual
// benches reset the per-query caches so every iteration does real work.
func benchSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	suiteOnce.Do(func() {
		suiteInst = experiments.NewSuite(kgsynth.Config{Seed: 42, Scale: 1.0}, experiments.Params{})
	})
	return suiteInst
}

func BenchmarkTableI_Workload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ds := kgsynth.Freebase(kgsynth.Config{Seed: 42})
		if len(ds.Queries) != 20 {
			b.Fatal("bad workload")
		}
	}
}

func BenchmarkTableII_CaseStudy(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.TableII(); len(r.Entries) != 3 {
			b.Fatal("bad case study")
		}
	}
}

func BenchmarkFig13_AccuracyGQBEvsNESS(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.Fig13(); len(r.PAtK) != 4 {
			b.Fatal("bad fig13")
		}
	}
}

func BenchmarkTableIII_DBpedia(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.TableIII(); len(r.Rows) != 8 {
			b.Fatal("bad table III")
		}
	}
}

func BenchmarkTableIV_UserStudy(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.TableIV(); len(r.Rows) != 20 {
			b.Fatal("bad table IV")
		}
	}
}

func BenchmarkTableV_MultiTuple(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.TableV(); len(r.Rows) != 7 {
			b.Fatal("bad table V")
		}
	}
}

func BenchmarkFig14_ProcessingTime(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.Fig14(); len(r.Rows) != 20 {
			b.Fatal("bad fig14")
		}
	}
}

func BenchmarkFig15_LatticeNodes(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.Fig15(); len(r.Rows) != 20 {
			b.Fatal("bad fig15")
		}
	}
}

func BenchmarkFig16_TwoTupleTime(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.Fig16(); len(r.Rows) != 7 {
			b.Fatal("bad fig16")
		}
	}
}

func BenchmarkTableVI_Discovery(b *testing.B) {
	s := benchSuite(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.ResetCache()
		if r := s.TableVI(); len(r.Rows) != 20 {
			b.Fatal("bad table VI")
		}
	}
}

// --- micro-benchmarks for the pipeline stages ---------------------------

var (
	microOnce sync.Once
	microDS   *kgsynth.Dataset
	microEng  *core.Engine
)

func microFixture(b *testing.B) (*kgsynth.Dataset, *core.Engine) {
	b.Helper()
	microOnce.Do(func() {
		microDS = kgsynth.Freebase(kgsynth.Config{Seed: 42, Scale: 1.0})
		microEng = core.NewEngine(microDS.Graph)
	})
	return microDS, microEng
}

func BenchmarkStoreBuild(b *testing.B) {
	ds, _ := microFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := storage.Build(ds.Graph)
		if st.NumEdges() != ds.Graph.NumEdges() {
			b.Fatal("bad store")
		}
	}
}

func BenchmarkNeighborhoodExtraction(b *testing.B) {
	ds, _ := microFixture(b)
	q := ds.MustQuery("F18")
	tuple, err := ds.Tuple(q.QueryTuple())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := neighborhood.ExtractCtx(context.Background(), ds.Graph, tuple, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMQGDiscovery(b *testing.B) {
	ds, eng := microFixture(b)
	q := ds.MustQuery("F18")
	tuple, err := ds.Tuple(q.QueryTuple())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DiscoverMQGCtx(context.Background(), tuple, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMQGMerge(b *testing.B) {
	ds, eng := microFixture(b)
	q := ds.MustQuery("F18")
	t1, _ := ds.Tuple(q.Table[0])
	t2, _ := ds.Tuple(q.Table[1])
	m1, err := eng.DiscoverMQGCtx(context.Background(), t1, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m2, err := eng.DiscoverMQGCtx(context.Background(), t2, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mqg.MergeCtx(context.Background(), []*mqg.MQG{m1, m2}, 15); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLatticeSearch(b *testing.B) {
	ds, eng := microFixture(b)
	q := ds.MustQuery("F18")
	tuple, err := ds.Tuple(q.QueryTuple())
	if err != nil {
		b.Fatal(err)
	}
	m, err := eng.DiscoverMQGCtx(context.Background(), tuple, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	lat, err := lattice.NewCtx(context.Background(), m)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := topk.SearchCtx(context.Background(), eng.Store(), lat, nil, topk.Options{K: 25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryEndToEnd(b *testing.B) {
	ds, eng := microFixture(b)
	q := ds.MustQuery("F18")
	tuple, err := ds.Tuple(q.QueryTuple())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.QueryCtx(context.Background(), tuple, core.Options{K: 25}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStatsWeights(b *testing.B) {
	ds, _ := microFixture(b)
	store := storage.Build(ds.Graph)
	st := stats.New(store)
	var edges []graph.Edge
	ds.Graph.Edges(func(e graph.Edge) bool {
		edges = append(edges, e)
		return len(edges) < 10000
	})
	b.ResetTimer()
	total := 0.0
	for i := 0; i < b.N; i++ {
		for _, e := range edges {
			total += st.Weight(e)
		}
	}
	if total < 0 {
		b.Fatal("impossible")
	}
}
