module gqbe

go 1.21
