package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"gqbe"
	"gqbe/internal/fleet"
	"gqbe/internal/kgsynth"
	"gqbe/internal/triples"
)

func writeTestGraph(t *testing.T) string {
	t.Helper()
	ds := kgsynth.Freebase(kgsynth.Config{Seed: 42, Scale: 0.25})
	path := filepath.Join(t.TempDir(), "kg.tsv")
	if err := triples.WriteStreamFile(path, ds.Graph); err != nil {
		t.Fatal(err)
	}
	return path
}

func readDir(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(entries))
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = data
	}
	return out
}

// TestKGShardGolden extends the PR 4 byte-comparison oracle to the fleet
// cut: partitioning the same input twice — and at 1/2/8 build workers —
// yields byte-identical shard snapshots and manifest.
func TestKGShardGolden(t *testing.T) {
	graph := writeTestGraph(t)
	base := t.TempDir()
	if err := run(graph, "", 2, filepath.Join(base, "a"), 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := readDir(t, filepath.Join(base, "a"))
	if len(want) != 3 { // shard-0.snap, shard-1.snap, fleet.json
		t.Fatalf("fleet dir has %d files, want 3: %v", len(want), want)
	}
	for i, dir := range []string{"again", "bs2", "bs8"} {
		bs := []int{1, 2, 8}[i]
		out := filepath.Join(base, dir)
		if err := run(graph, "", 2, out, bs); err != nil {
			t.Fatalf("run(build-shards=%d): %v", bs, err)
		}
		got := readDir(t, out)
		for name, data := range want {
			if !bytes.Equal(got[name], data) {
				t.Errorf("build-shards=%d: %s differs from baseline", bs, name)
			}
		}
	}
}

// TestKGShardOutputsLoad: each cut shard loads as an engine with the right
// identity, the manifest validates, and its CRCs match the files.
func TestKGShardOutputsLoad(t *testing.T) {
	graph := writeTestGraph(t)
	out := t.TempDir()
	if err := run(graph, "", 2, out, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	m, err := fleet.Load(filepath.Join(out, "fleet.json"))
	if err != nil {
		t.Fatalf("fleet.Load: %v", err)
	}
	if len(m.Shards) != 2 {
		t.Fatalf("manifest has %d shards, want 2", len(m.Shards))
	}
	for _, s := range m.Shards {
		eng, err := gqbe.LoadSnapshotFile(filepath.Join(out, s.Path))
		if err != nil {
			t.Fatalf("shard %d: %v", s.Index, err)
		}
		if i, n := eng.Shard(); i != s.Index || n != 2 {
			t.Errorf("shard %d loads with identity %d/%d", s.Index, i, n)
		}
		if eng.NumEntities() != s.Entities || eng.NumFacts() != s.Facts {
			t.Errorf("shard %d: graph shape %d/%d, manifest says %d/%d",
				s.Index, eng.NumEntities(), eng.NumFacts(), s.Entities, s.Facts)
		}
	}
}

// TestKGShardSingleShard: -shards 1 degenerates to a plain (v2, unsharded)
// snapshot plus a one-entry manifest — a valid single-node "fleet".
func TestKGShardSingleShard(t *testing.T) {
	graph := writeTestGraph(t)
	out := t.TempDir()
	if err := run(graph, "", 1, out, 1); err != nil {
		t.Fatalf("run: %v", err)
	}
	eng, err := gqbe.LoadSnapshotFile(filepath.Join(out, "shard-0.snap"))
	if err != nil {
		t.Fatal(err)
	}
	if _, n := eng.Shard(); n != 0 {
		t.Errorf("single-shard cut has shard identity count=%d, want unsharded", n)
	}
}

// TestKGShardFromSnapshot: cutting from a prebuilt snapshot equals cutting
// from the triples it was built from.
func TestKGShardFromSnapshot(t *testing.T) {
	graph := writeTestGraph(t)
	base := t.TempDir()
	eng, err := gqbe.LoadFile(graph)
	if err != nil {
		t.Fatal(err)
	}
	snap := filepath.Join(base, "kg.snap")
	if err := eng.WriteSnapshotFile(snap); err != nil {
		t.Fatal(err)
	}
	fromGraph, fromSnap := filepath.Join(base, "g"), filepath.Join(base, "s")
	if err := run(graph, "", 2, fromGraph, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("", snap, 2, fromSnap, 1); err != nil {
		t.Fatal(err)
	}
	want, got := readDir(t, fromGraph), readDir(t, fromSnap)
	for name, data := range want {
		if !bytes.Equal(got[name], data) {
			t.Errorf("%s differs between -graph and -snapshot cuts", name)
		}
	}
}

func TestKGShardFlagValidation(t *testing.T) {
	out := t.TempDir()
	if err := run("", "", 2, out, 1); err == nil {
		t.Error("run with neither input accepted")
	}
	if err := run("a.tsv", "b.snap", 2, out, 1); err == nil {
		t.Error("run with both inputs accepted")
	}
	if err := run("a.tsv", "", 0, out, 1); err == nil {
		t.Error("run with zero shards accepted")
	}
	if err := run("a.tsv", "", 2, "", 1); err == nil {
		t.Error("run with no out dir accepted")
	}
}
