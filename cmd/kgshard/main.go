// Command kgshard is the offline fleet partitioner: it cuts one knowledge
// graph into N per-shard engine snapshots plus a fleet manifest, ready for N
// gqbed daemons fronted by a gqberouter.
//
// Usage:
//
//	kgshard -graph kg.tsv -shards 4 -out fleet/
//	kgshard -snapshot kg.snap -shards 2 -out fleet/
//
// The fleet is answer-space sharded: every shard snapshot holds the FULL
// graph (co-located daemons share the resident pages via -snapshot-mmap, so
// the duplication costs disk, not memory) and differs only in the recorded
// shard identity, which makes its engine keep answers whose pivot entity it
// owns. Each shard therefore runs the identical search trajectory, the
// per-shard top-k lists partition the single-node top-k, and the router's
// (score desc, tie asc) merge reconstructs it bit for bit — the property the
// oracle suites in internal/topk and internal/router pin.
//
// Output is deterministic: the same input at any -build-shards setting
// yields byte-identical shard snapshots and manifest, so fleets can be
// rebuilt and diffed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gqbe"
	"gqbe/internal/fleet"
)

func main() {
	var (
		graphPath    = flag.String("graph", "", "path to the knowledge graph (TSV triples)")
		snapshotPath = flag.String("snapshot", "", "existing engine snapshot to partition instead of -graph")
		shards       = flag.Int("shards", 0, "number of shards to cut (required, >= 1)")
		outDir       = flag.String("out", "", "output directory for shard snapshots and fleet.json (required)")
		buildShards  = flag.Int("build-shards", 0, "concurrent workers for the offline store build (0 = GOMAXPROCS, 1 = sequential); output bytes are identical at any setting")
	)
	flag.Parse()
	if err := run(*graphPath, *snapshotPath, *shards, *outDir, *buildShards); err != nil {
		fmt.Fprintf(os.Stderr, "kgshard: %v\n", err)
		os.Exit(1)
	}
}

// run cuts the fleet; factored out of main for the golden tests.
func run(graphPath, snapshotPath string, shards int, outDir string, buildShards int) error {
	if shards < 1 {
		return fmt.Errorf("-shards must be >= 1 (got %d)", shards)
	}
	if outDir == "" {
		return fmt.Errorf("-out is required")
	}
	if (graphPath == "") == (snapshotPath == "") {
		return fmt.Errorf("exactly one of -graph and -snapshot is required")
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}

	start := time.Now()
	var eng *gqbe.Engine
	var err error
	if snapshotPath != "" {
		eng, err = gqbe.LoadSnapshotFile(snapshotPath)
	} else {
		eng, err = gqbe.LoadFileSharded(graphPath, buildShards)
	}
	if err != nil {
		return err
	}
	fmt.Printf("kgshard: %d entities, %d facts loaded in %v\n",
		eng.NumEntities(), eng.NumFacts(), time.Since(start).Round(time.Millisecond))

	paths := make([]string, shards)
	for i := 0; i < shards; i++ {
		sh := eng
		if shards > 1 {
			if sh, err = eng.WithShard(i, shards); err != nil {
				return err
			}
		}
		paths[i] = filepath.Join(outDir, fmt.Sprintf("shard-%d.snap", i))
		if err := sh.WriteSnapshotFile(paths[i]); err != nil {
			return err
		}
		fmt.Printf("kgshard: wrote %s\n", paths[i])
	}

	m, err := fleet.New(paths, eng.NumEntities(), eng.NumFacts())
	if err != nil {
		return err
	}
	manifestPath := filepath.Join(outDir, "fleet.json")
	if err := m.Write(manifestPath); err != nil {
		return err
	}
	fmt.Printf("kgshard: %d shard(s) + %s in %v\n",
		shards, manifestPath, time.Since(start).Round(time.Millisecond))
	return nil
}
