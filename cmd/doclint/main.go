// Command doclint is the CI documentation gate. It has two checks:
//
//   - exported-symbol docs: every exported const, var, func, type, and
//     method in the given packages must carry a doc comment, and the
//     package itself must have a package comment — the contract that keeps
//     `go doc gqbe` usable (the same rule as revive's `exported`, without
//     pulling in a linter dependency);
//   - doc links: every relative markdown link in the given files and
//     directories must resolve to an existing file, so docs/ cannot rot
//     silently as the tree moves.
//
// Usage:
//
//	doclint -pkg . -links README.md,docs
//
// Exit status is non-zero if any finding is reported; each finding is one
// line on stderr.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

func main() {
	pkgs := flag.String("pkg", "", "comma-separated package directories whose exported symbols must be documented")
	links := flag.String("links", "", "comma-separated markdown files or directories whose relative links must resolve")
	flag.Parse()

	var findings []string
	for _, dir := range splitList(*pkgs) {
		fs, err := lintPackageDocs(dir)
		if err != nil {
			fatalf("doclint: %v", err)
		}
		findings = append(findings, fs...)
	}
	for _, path := range splitList(*links) {
		fs, err := lintLinks(path)
		if err != nil {
			fatalf("doclint: %v", err)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}

func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// lintPackageDocs reports every undocumented exported symbol in the package
// at dir (test files excluded).
func lintPackageDocs(dir string) ([]string, error) {
	fset := token.NewFileSet()
	parsed, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var findings []string
	for _, astPkg := range parsed {
		// doc.New with AllDecls keeps everything; we filter to exported
		// names ourselves so unexported helpers never trip the gate.
		d := doc.New(astPkg, dir, doc.AllDecls)
		at := func(name string) string {
			return fmt.Sprintf("%s: package %s: %s", dir, d.Name, name)
		}
		if strings.TrimSpace(d.Doc) == "" {
			findings = append(findings, at("missing package comment"))
		}
		report := func(kind, name, docText string) {
			if ast.IsExported(name) && strings.TrimSpace(docText) == "" {
				findings = append(findings, at(fmt.Sprintf("exported %s %s is undocumented", kind, name)))
			}
		}
		reportValues(&findings, at, append(d.Consts, d.Vars...))
		for _, f := range d.Funcs {
			report("function", f.Name, f.Doc)
		}
		for _, t := range d.Types {
			report("type", t.Name, t.Doc)
			for _, f := range t.Funcs {
				report("function", f.Name, f.Doc)
			}
			for _, m := range t.Methods {
				if ast.IsExported(t.Name) && ast.IsExported(m.Name) {
					if strings.TrimSpace(m.Doc) == "" {
						findings = append(findings, at(fmt.Sprintf("exported method %s.%s is undocumented", t.Name, m.Name)))
					}
				}
			}
			reportValues(&findings, at, append(t.Consts, t.Vars...))
		}
	}
	return findings, nil
}

// reportValues flags undocumented exported names in const/var groups. A
// name is documented if its group has a doc comment OR its own spec inside
// the group does (the usual style for enums like StopReason constants —
// go/doc's Value.Doc carries only the group comment, so specs are checked
// on the AST directly).
func reportValues(findings *[]string, at func(string) string, values []*doc.Value) {
	for _, v := range values {
		if strings.TrimSpace(v.Doc) != "" {
			continue
		}
		for _, spec := range v.Decl.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			if vs.Doc.Text() != "" || vs.Comment.Text() != "" {
				continue
			}
			for _, name := range vs.Names {
				if ast.IsExported(name.Name) {
					*findings = append(*findings, at(fmt.Sprintf("exported value %s is undocumented", name.Name)))
				}
			}
		}
	}
}

// mdLink matches inline markdown links [text](target) and the title form
// [text](target "Title"); images share the syntax and are checked the same
// way. mdLinkDef matches reference-style definitions (`[ref]: target`) —
// checking definitions covers every [text][ref] use of them.
var (
	mdLink    = regexp.MustCompile(`\]\(\s*([^)\s]+)(?:\s+"[^"]*")?\s*\)`)
	mdLinkDef = regexp.MustCompile(`(?m)^\[[^\]]+\]:\s*(\S+)`)
)

// lintLinks checks every relative link in path (a .md file, or a directory
// scanned recursively for .md files) resolves to an existing file.
func lintLinks(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	var files []string
	if info.IsDir() {
		err := filepath.WalkDir(path, func(p string, d os.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(p, ".md") {
				files = append(files, p)
			}
			return err
		})
		if err != nil {
			return nil, err
		}
	} else {
		files = []string{path}
	}
	var findings []string
	for _, f := range files {
		fs, err := lintFileLinks(f)
		if err != nil {
			return nil, err
		}
		findings = append(findings, fs...)
	}
	return findings, nil
}

func lintFileLinks(file string) ([]string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	var findings []string
	links := mdLink.FindAllStringSubmatch(string(data), -1)
	links = append(links, mdLinkDef.FindAllStringSubmatch(string(data), -1)...)
	for _, m := range links {
		target := m[1]
		if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
			continue // external; reachability is not this linter's job
		}
		// In-page anchors can't be resolved without a markdown renderer;
		// only the file part of a cross-file link is checked.
		target, _, _ = strings.Cut(target, "#")
		if target == "" {
			continue
		}
		resolved := filepath.Join(filepath.Dir(file), target)
		if _, err := os.Stat(resolved); err != nil {
			findings = append(findings, fmt.Sprintf("%s: dead link %q (%s)", file, m[1], resolved))
		}
	}
	return findings, nil
}
