package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestLintPackageDocs(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "x.go"), `// Package x is documented.
package x

// Documented is fine.
func Documented() {}

func Undocumented() {}

// T is a type.
type T struct{}

func (T) Method() {}

func (T) unexported() {}

const (
	// A is documented inline, which satisfies the lint; the block itself
	// has no doc comment, so B is a finding.
	A = 1
	B = 2
)

var undocumentedButUnexported = 3
`)
	findings, err := lintPackageDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{"Undocumented", "T.Method", "value B"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing finding for %s in:\n%s", want, joined)
		}
	}
	for _, wantNot := range []string{"Documented()", "value A", "unexported"} {
		if strings.Contains(joined, wantNot) {
			t.Errorf("false positive for %s in:\n%s", wantNot, joined)
		}
	}
	if len(findings) != 3 {
		t.Errorf("got %d findings, want 3:\n%s", len(findings), joined)
	}
}

func TestLintPackageDocsMissingPackageComment(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "x.go"), "package x\n")
	findings, err := lintPackageDocs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0], "missing package comment") {
		t.Errorf("findings = %v, want one missing-package-comment finding", findings)
	}
}

func TestLintLinks(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "docs", "REF.md"), "see [up](../README.md) and [anchor](../README.md#part) and [gone](nope.md)\nalso [web](https://example.com/x) and [frag](#local)\nand [titled](missing.md \"A Title\") and a [ref][r] link\n\n[r]: alsomissing.md\n")
	write(t, filepath.Join(dir, "README.md"), "see [docs](docs/REF.md) and [titled-ok](docs/REF.md \"Reference\")")
	findings, err := lintLinks(dir)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(findings, "\n")
	for _, want := range []string{"nope.md", "missing.md", "alsomissing.md"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing dead-link finding for %s in:\n%s", want, joined)
		}
	}
	if len(findings) != 3 {
		t.Errorf("findings = %v, want exactly 3 dead links", findings)
	}
}
