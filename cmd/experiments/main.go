// Command experiments regenerates every table and figure of the paper's
// evaluation section (§VI) over the synthetic datasets and prints them in
// paper order. See EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
//
// Usage:
//
//	experiments [-seed 42] [-scale 1.0] [-only fig13,tableV]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gqbe/internal/experiments"
	"gqbe/internal/kgsynth"
)

func main() {
	var (
		seed  = flag.Int64("seed", 42, "dataset seed")
		scale = flag.Float64("scale", 1.0, "dataset scale")
		only  = flag.String("only", "", "comma-separated subset: tableI,tableII,fig13,tableIII,tableIV,tableV,fig14,fig15,fig16,tableVI")
	)
	flag.Parse()

	fmt.Printf("generating datasets (seed=%d, scale=%g)...\n", *seed, *scale)
	s := experiments.NewSuite(kgsynth.Config{Seed: *seed, Scale: *scale}, experiments.Params{})
	fmt.Printf("freebase-like: %v\ndbpedia-like: %v\n\n", s.FB.Graph, s.DB.Graph)

	if *only == "" {
		fmt.Println(s.RenderAll())
		return
	}
	drivers := map[string]func() string{
		"tablei":   func() string { return s.TableI().Render() },
		"tableii":  func() string { return s.TableII().Render() },
		"fig13":    func() string { return s.Fig13().Render() },
		"tableiii": func() string { return s.TableIII().Render() },
		"tableiv":  func() string { return s.TableIV().Render() },
		"tablev":   func() string { return s.TableV().Render() },
		"fig14":    func() string { return s.Fig14().Render() },
		"fig15":    func() string { return s.Fig15().Render() },
		"fig16":    func() string { return s.Fig16().Render() },
		"tablevi":  func() string { return s.TableVI().Render() },
	}
	for _, name := range strings.Split(*only, ",") {
		name = strings.ToLower(strings.TrimSpace(name))
		d, ok := drivers[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println(d())
	}
}
