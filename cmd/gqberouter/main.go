// Command gqberouter is the fleet front end for sharded gqbed deployments:
// it fans each query out to every shard daemon, merges the per-shard ranked
// answers deterministically (score desc, tie asc — bit-identical to one
// unsharded daemon; see internal/router), and serves the same HTTP surface
// as gqbed itself, so clients and dashboards need no changes when a
// deployment grows from one daemon to a fleet.
//
// Usage:
//
//	gqberouter -shards http://10.0.0.1:8080,http://10.0.0.2:8080 [-addr :8090]
//	gqberouter -shards ... -fleet fleet/fleet.json   # cross-check the manifest
//
// -shards lists the shard daemons' base URLs in shard-index order — the
// order must match the fleet manifest cmd/kgshard wrote, because answer
// ownership is by shard index. With -fleet the router loads the manifest and
// refuses to start when the shard count disagrees, catching the most common
// deployment mistake (a router pointed at half a fleet would silently drop
// the other half's answers).
//
// Degraded mode: a slow or dead shard yields a 200 with "partial": true and
// the missing shards named — never a 500. With -stale-serve, a query every
// shard failed is answered from the router's merged-result cache (labeled
// stale, with an Age header) when it retains the key.
//
// Endpoints: POST /v1/query, /v1/query:batch, /v1/query:explain (all merged
// across the fleet), GET /v1/entity/{name} (proxied), GET /healthz (fleet
// probe), GET /statz (fleet counters + per-shard latency), GET /metrics
// (gqbe_router_* Prometheus families).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gqbe/internal/fleet"
	"gqbe/internal/router"
)

func main() {
	var (
		shards = flag.String("shards", "", "comma-separated shard base URLs in shard-index order (required)")
		addr   = flag.String("addr", ":8090", "listen address")
		fleetP = flag.String("fleet", "", "optional fleet.json manifest (from cmd/kgshard) to cross-check the shard count and scheme against")

		timeout      = flag.Duration("timeout", 10*time.Second, "default per-query deadline")
		maxTimeout   = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		queueWait    = flag.Duration("queue-wait", time.Second, "shard-side admission queue bound (sizes the per-shard call budget)")
		cacheEntries = flag.Int("cache-entries", 1024, "merged-result cache capacity in entries (negative disables)")
		cacheShards  = flag.Int("cache-shards", 16, "merged-result cache shard count")
		staleServe   = flag.Bool("stale-serve", false, "serve retained merged results (labeled stale, with an Age header) when every shard fails")
		staleTTL     = flag.Duration("stale-ttl", 0, "merged-result cache freshness horizon (0 = 1m default, negative = never stale)")
		retries      = flag.Int("retries", 1, "transport-error retries per shard call (negative disables)")
		batchItems   = flag.Int("max-batch-items", 64, "max queries per /v1/query:batch request")
	)
	flag.Parse()

	if *shards == "" {
		fmt.Fprintln(os.Stderr, "gqberouter: -shards is required")
		flag.Usage()
		os.Exit(2)
	}
	urls := strings.Split(*shards, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}
	if *fleetP != "" {
		m, err := fleet.Load(*fleetP)
		if err != nil {
			log.Fatalf("gqberouter: %v", err)
		}
		if len(m.Shards) != len(urls) {
			log.Fatalf("gqberouter: manifest %s describes %d shards but -shards lists %d; "+
				"a router fronting part of a fleet would silently drop the rest's answers",
				*fleetP, len(m.Shards), len(urls))
		}
		log.Printf("gqberouter: manifest %s ok: %d shards, scheme %s", *fleetP, len(m.Shards), m.Scheme)
	}

	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	rt, err := router.New(router.Config{
		Shards:         urls,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxQueueWait:   *queueWait,
		CacheEntries:   *cacheEntries,
		CacheShards:    *cacheShards,
		StaleServe:     *staleServe,
		StaleTTL:       *staleTTL,
		Retries:        *retries,
		MaxBatchItems:  *batchItems,
		Logger:         logger,
	})
	if err != nil {
		log.Fatalf("gqberouter: %v", err)
	}
	log.Printf("gqberouter: fronting %d shard(s)", rt.Shards())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		// The write window covers the longest allowed fan-out — queue wait
		// plus maximum deadline plus the shard-call slack — and the merged
		// response itself.
		WriteTimeout: *queueWait + *maxTimeout + 30*time.Second,
		IdleTimeout:  60 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("gqberouter: serving on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("gqberouter: %v", err)
	case <-ctx.Done():
	}

	log.Printf("gqberouter: shutting down, draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(),
		*queueWait+*maxTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("gqberouter: shutdown: %v", err)
	}
	log.Printf("gqberouter: bye")
}
