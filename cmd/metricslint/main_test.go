package main

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gqbe"
	"gqbe/internal/router"
	"gqbe/internal/server"
	"gqbe/internal/testkg"
)

const goodExposition = `# HELP gqbe_requests_total Query requests received.
# TYPE gqbe_requests_total counter
gqbe_requests_total 3
# HELP gqbe_query_outcomes_total Outcomes.
# TYPE gqbe_query_outcomes_total counter
gqbe_query_outcomes_total{outcome="served"} 2
gqbe_query_outcomes_total{outcome="errored"} 1
# HELP gqbe_search_latency_seconds Search time.
# TYPE gqbe_search_latency_seconds histogram
gqbe_search_latency_seconds_bucket{le="0.001"} 1
gqbe_search_latency_seconds_bucket{le="0.1"} 2
gqbe_search_latency_seconds_bucket{le="+Inf"} 2
gqbe_search_latency_seconds_sum 0.05
gqbe_search_latency_seconds_count 2
`

func TestLintMetricsClean(t *testing.T) {
	if fs := lintMetrics(strings.NewReader(goodExposition), nil); len(fs) != 0 {
		t.Fatalf("findings on a clean exposition: %v", fs)
	}
}

func TestLintMetricsViolations(t *testing.T) {
	cases := map[string]struct {
		body string
		want string
	}{
		"no samples": {
			body: "# HELP x y\n# TYPE x counter\n",
			want: "no samples",
		},
		"undeclared family": {
			body: "orphan_total 1\n",
			want: "no # TYPE declaration",
		},
		"unknown type": {
			body: "# TYPE x widget\nx 1\n",
			want: "unknown metric type",
		},
		"unparseable value": {
			body: "# TYPE x counter\nx banana\n",
			want: "unparseable value",
		},
		"non-monotone buckets": {
			body: "# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
			want: "cumulative count decreases",
		},
		"missing +Inf": {
			body: "# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 1\nh_sum 1\nh_count 1\n",
			want: "want le=\"+Inf\"",
		},
		"count mismatch": {
			body: "# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 5\n",
			want: "_count 5 != +Inf bucket 2",
		},
		"missing sum": {
			body: "# TYPE h histogram\n" +
				"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 1\n",
			want: "_sum",
		},
		"bounds not increasing": {
			body: "# TYPE h histogram\n" +
				"h_bucket{le=\"0.5\"} 1\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			want: "bounds not increasing",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			fs := lintMetrics(strings.NewReader(tc.body), nil)
			found := false
			for _, f := range fs {
				if strings.Contains(f, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("findings %v do not mention %q", fs, tc.want)
			}
		})
	}
}

const goodExplain = `{
  "request_id": "ab-000001",
  "answers": [{"entities": ["Jerry Yang", "Yahoo!"], "score": 1.0}],
  "stats": {"nodes_evaluated": 2, "mqg_edges": 3},
  "lattice": {"generated": 4, "evaluated": 2, "pruned": 1, "null": 0,
              "frontier_recomputations": 0, "stop_reason": "topk-proven"},
  "node_evals": [{"edges": [0, 1], "rows": 3, "eval_us": 10},
                 {"edges": [0], "rows": 1, "eval_us": 4}],
  "trace": {"name": "query", "duration_us": 1200, "children": []},
  "serving": {"queue_wait_ms": 0.01, "workers": 1, "timeout_ms": 10000}
}`

const faultExposition = `# TYPE gqbe_faults_injected_total counter
gqbe_faults_injected_total 7
# TYPE gqbe_recovered_panics_total counter
gqbe_recovered_panics_total 2
# TYPE gqbe_stale_served_total counter
gqbe_stale_served_total 1
# TYPE gqbe_reloads_total counter
gqbe_reloads_total{outcome="ok"} 3
gqbe_reloads_total{outcome="rejected"} 1
# TYPE gqbe_brownouts_total counter
gqbe_brownouts_total 4
# TYPE gqbe_engine_generation gauge
gqbe_engine_generation 4
`

func TestLintMetricsRequiredFamilies(t *testing.T) {
	if fs := lintMetrics(strings.NewReader(faultExposition), gqbeRequiredFamilies); len(fs) != 0 {
		t.Fatalf("findings on an exposition carrying every required family: %v", fs)
	}
	// Dropping one family must produce both targeted findings paths: no
	// TYPE declaration at all, and declared-but-unsampled.
	dropped := strings.ReplaceAll(faultExposition, "# TYPE gqbe_brownouts_total counter\ngqbe_brownouts_total 4\n", "")
	fs := lintMetrics(strings.NewReader(dropped), gqbeRequiredFamilies)
	if len(fs) != 1 || !strings.Contains(fs[0], "required family gqbe_brownouts_total") {
		t.Errorf("dropped family findings = %v, want one mentioning gqbe_brownouts_total", fs)
	}
	unsampled := strings.ReplaceAll(faultExposition, "gqbe_stale_served_total 1\n", "")
	fs = lintMetrics(strings.NewReader(unsampled), gqbeRequiredFamilies)
	if len(fs) != 1 || !strings.Contains(fs[0], "gqbe_stale_served_total has no samples") {
		t.Errorf("unsampled family findings = %v, want one mentioning gqbe_stale_served_total", fs)
	}
}

func TestLintExplainClean(t *testing.T) {
	if fs := lintExplain([]byte(goodExplain)); len(fs) != 0 {
		t.Fatalf("findings on a clean explain: %v", fs)
	}
}

func TestLintExplainViolations(t *testing.T) {
	cases := map[string]struct {
		mutate func(string) string
		want   string
	}{
		"not JSON": {
			mutate: func(s string) string { return s[1:] },
			want:   "not valid JSON",
		},
		"missing request_id": {
			mutate: func(s string) string { return strings.Replace(s, `"request_id"`, `"request_idx"`, 1) },
			want:   "missing request_id",
		},
		"eval count mismatch": {
			mutate: func(s string) string { return strings.Replace(s, `"nodes_evaluated": 2`, `"nodes_evaluated": 7`, 1) },
			want:   "node_evals",
		},
		"wrong trace root": {
			mutate: func(s string) string { return strings.Replace(s, `"name": "query"`, `"name": "nope"`, 1) },
			want:   "trace root",
		},
		"generated below evaluated": {
			mutate: func(s string) string { return strings.Replace(s, `"generated": 4`, `"generated": 1`, 1) },
			want:   "generated",
		},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			fs := lintExplain([]byte(tc.mutate(goodExplain)))
			found := false
			for _, f := range fs {
				if strings.Contains(f, tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("findings %v do not mention %q", fs, tc.want)
			}
		})
	}
}

// TestLintExplainTruncated: a capped explain response replays only a prefix
// of node_evals — legal exactly when it says "truncated": true, and never
// beyond what the stats claim was evaluated.
func TestLintExplainTruncated(t *testing.T) {
	truncate := func(s string) string {
		s = strings.Replace(s, `"request_id"`, `"truncated": true, "request_id"`, 1)
		return strings.Replace(s,
			`"node_evals": [{"edges": [0, 1], "rows": 3, "eval_us": 10},
                 {"edges": [0], "rows": 1, "eval_us": 4}]`,
			`"node_evals": [{"edges": [0, 1], "rows": 3, "eval_us": 10}]`, 1)
	}
	if fs := lintExplain([]byte(truncate(goodExplain))); len(fs) != 0 {
		t.Errorf("findings on a truncated explain with a legal prefix: %v", fs)
	}
	// The same prefix without the truncated marker is a mismatch.
	untagged := strings.Replace(truncate(goodExplain), `"truncated": true, `, "", 1)
	if fs := lintExplain([]byte(untagged)); len(fs) == 0 {
		t.Error("short node_evals without truncated marker produced no findings")
	}
	// Truncated or not, node_evals must never exceed stats.nodes_evaluated.
	over := strings.Replace(truncate(goodExplain), `"nodes_evaluated": 2`, `"nodes_evaluated": 0`, 1)
	over = strings.Replace(over, `"evaluated": 2`, `"evaluated": 0`, 1)
	fs := lintExplain([]byte(over))
	found := false
	for _, f := range fs {
		if strings.Contains(f, "beyond stats.nodes_evaluated") {
			found = true
		}
	}
	if !found {
		t.Errorf("findings %v do not flag node_evals beyond stats", fs)
	}
}

// TestLintMetricsRouterScrape lints a LIVE gqberouter /metrics scrape against
// the -router family contract: the gate and the router's exposition must
// never drift apart, and the exposition must stay well-formed (histogram
// invariants included) with real traffic behind the counters.
func TestLintMetricsRouterScrape(t *testing.T) {
	b := gqbe.NewBuilder()
	for _, tr := range testkg.Fig1Triples() {
		b.Add(tr[0], tr[1], tr[2])
	}
	eng, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	quiet := slog.New(slog.NewTextHandler(io.Discard, nil))
	var shards []string
	for i := 0; i < 2; i++ {
		se, err := eng.WithShard(i, 2)
		if err != nil {
			t.Fatalf("WithShard: %v", err)
		}
		srv := httptest.NewServer(server.New(se, server.Config{Logger: quiet}))
		defer srv.Close()
		shards = append(shards, srv.URL)
	}
	rt, err := router.New(router.Config{Shards: shards, Logger: quiet})
	if err != nil {
		t.Fatalf("router.New: %v", err)
	}
	// Put real traffic behind the counters: a served query and an errored one.
	for _, body := range []string{
		`{"tuple":["Jerry Yang","Yahoo!"],"k":5}`,
		`{"tuple":["Nobody Anybody","Yahoo!"],"k":5}`,
	} {
		req := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rt.ServeHTTP(httptest.NewRecorder(), req)
	}
	w := httptest.NewRecorder()
	rt.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", w.Code)
	}
	if fs := lintMetrics(strings.NewReader(w.Body.String()), routerRequiredFamilies); len(fs) != 0 {
		t.Fatalf("findings on a live router scrape: %v", fs)
	}
	// The gate has teeth: a scrape missing a fleet family fails.
	gutted := strings.ReplaceAll(w.Body.String(), "gqbe_router_partial_total", "gqbe_router_renamed_total")
	fs := lintMetrics(strings.NewReader(gutted), routerRequiredFamilies)
	found := false
	for _, f := range fs {
		if strings.Contains(f, "required family gqbe_router_partial_total") {
			found = true
		}
	}
	if !found {
		t.Errorf("findings %v do not flag the dropped router family", fs)
	}
}
