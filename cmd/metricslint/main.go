// Command metricslint is the CI observability gate: it validates the two
// machine-readable surfaces the serving layer exposes, without any scrape or
// JSON-schema dependency.
//
//   - -metrics FILE: the body of GET /metrics must be well-formed Prometheus
//     text exposition (format 0.0.4): every sample line parses, every sample
//     belongs to a family declared with # TYPE (of a known type), and every
//     histogram keeps its invariants — strictly increasing bucket bounds,
//     monotone cumulative counts, a final le="+Inf" bucket, and _count/_sum
//     series with _count equal to the +Inf bucket exactly. The degraded-
//     service families the server promises (gqbe_faults_injected_total,
//     gqbe_recovered_panics_total, gqbe_stale_served_total,
//     gqbe_reloads_total, gqbe_brownouts_total, gqbe_engine_generation)
//     must be present — a refactor that drops one would otherwise blind the
//     failure-mode dashboards silently;
//   - -explain FILE: the body of POST /v1/query:explain must carry the
//     documented schema — request_id, answers, stats, lattice, node_evals,
//     trace, serving — with the cross-field invariants the server promises:
//     lattice.evaluated == stats.nodes_evaluated, len(node_evals) equal to
//     it (or below it when "truncated": true marks a capped response), and
//     a trace rooted at the "query" span.
//
// Usage:
//
//	metricslint -metrics metrics.txt -explain explain.json
//
// Exit status is non-zero if any finding is reported; each finding is one
// line on stderr.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	metricsPath := flag.String("metrics", "", "Prometheus text exposition file to validate")
	explainPath := flag.String("explain", "", "/v1/query:explain JSON response file to validate")
	routerScrape := flag.Bool("router", false, "the -metrics file is a gqberouter scrape: require the gqbe_router_* fleet families instead of the daemon's")
	flag.Parse()

	if *metricsPath == "" && *explainPath == "" {
		fmt.Fprintln(os.Stderr, "metricslint: nothing to lint; pass -metrics and/or -explain")
		os.Exit(2)
	}
	var findings []string
	if *metricsPath != "" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			fatalf("metricslint: %v", err)
		}
		required := gqbeRequiredFamilies
		if *routerScrape {
			required = routerRequiredFamilies
		}
		findings = append(findings, lintMetrics(f, required)...)
		f.Close()
	}
	if *explainPath != "" {
		data, err := os.ReadFile(*explainPath)
		if err != nil {
			fatalf("metricslint: %v", err)
		}
		findings = append(findings, lintExplain(data)...)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "metricslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// knownTypes are the metric types the 0.0.4 exposition format defines.
var knownTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// gqbeRequiredFamilies are the degraded-service metric families gqbed's
// /metrics contractually exposes; the CI gate fails if any disappears.
var gqbeRequiredFamilies = []string{
	"gqbe_faults_injected_total",
	"gqbe_recovered_panics_total",
	"gqbe_stale_served_total",
	"gqbe_reloads_total",
	"gqbe_brownouts_total",
	"gqbe_engine_generation",
}

// routerRequiredFamilies are the fleet-health families gqberouter's /metrics
// contractually exposes (-router): the degraded-mode dashboards — partial
// merges, shard errors, stale serving, trajectory-divergence alarms — go
// blind if any of these disappears.
var routerRequiredFamilies = []string{
	"gqbe_router_requests_total",
	"gqbe_router_outcomes_total",
	"gqbe_router_fanout_total",
	"gqbe_router_shard_errors_total",
	"gqbe_router_partial_total",
	"gqbe_router_stats_mismatch_total",
	"gqbe_router_stale_served_total",
	"gqbe_router_shard_latency_seconds",
	"gqbe_router_shards",
}

// sample is one parsed exposition sample.
type sample struct {
	labels string
	value  float64
}

// lintMetrics validates a Prometheus text exposition read from r and
// returns one finding per violation. Each family in required must be both
// declared and sampled; pass nil to lint format only.
func lintMetrics(r io.Reader, required []string) []string {
	var findings []string
	types := make(map[string]string)
	samples := make(map[string][]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				findings = append(findings, fmt.Sprintf("line %d: malformed TYPE line: %q", lineNo, line))
				continue
			}
			if !knownTypes[f[3]] {
				findings = append(findings, fmt.Sprintf("line %d: unknown metric type %q", lineNo, f[3]))
			}
			types[f[2]] = f[3]
		case strings.HasPrefix(line, "# HELP "):
			if len(strings.Fields(line)) < 3 {
				findings = append(findings, fmt.Sprintf("line %d: malformed HELP line: %q", lineNo, line))
			}
		case strings.HasPrefix(line, "#"):
			// Other comments are legal and ignored.
		default:
			name, s, err := parseSample(line)
			if err != nil {
				findings = append(findings, fmt.Sprintf("line %d: %v", lineNo, err))
				continue
			}
			samples[name] = append(samples[name], s)
		}
	}
	if err := sc.Err(); err != nil {
		return append(findings, fmt.Sprintf("reading exposition: %v", err))
	}
	if len(samples) == 0 {
		findings = append(findings, "exposition has no samples")
	}

	// Every sample must belong to a declared family.
	names := make([]string, 0, len(samples))
	for name := range samples {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := types[familyOf(name, types)]; !ok {
			findings = append(findings, fmt.Sprintf("sample %s has no # TYPE declaration", name))
		}
	}

	// Contractual families: declared with a TYPE and carrying at least one
	// sample (labeled variants like gqbe_reloads_total{outcome="ok"} count).
	for _, fam := range required {
		if _, ok := types[fam]; !ok {
			findings = append(findings, fmt.Sprintf("required family %s has no # TYPE declaration", fam))
			continue
		}
		n := len(samples[fam])
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			n += len(samples[fam+suf])
		}
		if n == 0 {
			findings = append(findings, fmt.Sprintf("required family %s has no samples", fam))
		}
	}

	// Histogram invariants.
	for fam, typ := range types {
		if typ != "histogram" {
			continue
		}
		findings = append(findings, lintHistogram(fam, samples)...)
	}
	return findings
}

// parseSample splits one sample line into its metric name (labels stripped)
// and parsed sample.
func parseSample(line string) (string, sample, error) {
	sp := strings.LastIndexByte(line, ' ')
	if sp < 0 {
		return "", sample{}, fmt.Errorf("malformed sample line: %q", line)
	}
	id, raw := line[:sp], line[sp+1:]
	val, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		return "", sample{}, fmt.Errorf("unparseable value in %q: %v", line, err)
	}
	name, labels := id, ""
	if i := strings.IndexByte(id, '{'); i >= 0 {
		if !strings.HasSuffix(id, "}") {
			return "", sample{}, fmt.Errorf("malformed labels in %q", line)
		}
		name, labels = id[:i], id[i+1:len(id)-1]
	}
	if name == "" {
		return "", sample{}, fmt.Errorf("empty metric name in %q", line)
	}
	return name, sample{labels: labels, value: val}, nil
}

// familyOf maps a sample name to its declared family: histogram samples
// expose _bucket/_sum/_count under the family's TYPE declaration.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if fam := strings.TrimSuffix(name, suf); fam != name {
			if _, ok := types[fam]; ok {
				return fam
			}
		}
	}
	return name
}

// lintHistogram checks one histogram family's bucket and series invariants.
func lintHistogram(fam string, samples map[string][]sample) []string {
	var findings []string
	buckets := samples[fam+"_bucket"]
	if len(buckets) == 0 {
		return append(findings, fmt.Sprintf("histogram %s has no _bucket samples", fam))
	}
	prevCount := -1.0
	prevBound := 0.0
	first := true
	for _, bk := range buckets {
		le, ok := strings.CutPrefix(bk.labels, `le="`)
		le, ok2 := strings.CutSuffix(le, `"`)
		if !ok || !ok2 {
			findings = append(findings, fmt.Sprintf("histogram %s bucket without le label: %q", fam, bk.labels))
			continue
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			findings = append(findings, fmt.Sprintf("histogram %s: unparseable le=%q", fam, le))
			continue
		}
		if !first && bound <= prevBound {
			findings = append(findings, fmt.Sprintf("histogram %s: bucket bounds not increasing at le=%q", fam, le))
		}
		if bk.value < prevCount {
			findings = append(findings, fmt.Sprintf("histogram %s: cumulative count decreases at le=%q", fam, le))
		}
		prevBound, prevCount, first = bound, bk.value, false
	}
	last := buckets[len(buckets)-1]
	if last.labels != `le="+Inf"` {
		findings = append(findings, fmt.Sprintf("histogram %s: final bucket is %q, want le=\"+Inf\"", fam, last.labels))
	}
	count := samples[fam+"_count"]
	switch {
	case len(count) != 1:
		findings = append(findings, fmt.Sprintf("histogram %s: want one _count sample, got %d", fam, len(count)))
	case count[0].value != last.value:
		findings = append(findings, fmt.Sprintf("histogram %s: _count %v != +Inf bucket %v", fam, count[0].value, last.value))
	}
	if len(samples[fam+"_sum"]) != 1 {
		findings = append(findings, fmt.Sprintf("histogram %s: want one _sum sample, got %d", fam, len(samples[fam+"_sum"])))
	}
	return findings
}

// explainDoc is the subset of the explain schema the linter checks; unknown
// fields are fine (the schema may grow), missing ones are findings.
type explainDoc struct {
	RequestID *string `json:"request_id"`
	Answers   *[]any  `json:"answers"`
	Stats     *struct {
		NodesEvaluated *int `json:"nodes_evaluated"`
	} `json:"stats"`
	Lattice *struct {
		Generated  *int    `json:"generated"`
		Evaluated  *int    `json:"evaluated"`
		StopReason *string `json:"stop_reason"`
	} `json:"lattice"`
	NodeEvals *[]struct {
		Edges []int `json:"edges"`
	} `json:"node_evals"`
	Trace *struct {
		Name       *string `json:"name"`
		DurationUS *int64  `json:"duration_us"`
	} `json:"trace"`
	Serving *struct {
		Workers *int `json:"workers"`
	} `json:"serving"`
	// Truncated marks a response whose node_evals/trace were cut at the
	// server's size caps; absent means false.
	Truncated bool `json:"truncated"`
}

// lintExplain validates one explain response body.
func lintExplain(data []byte) []string {
	var findings []string
	var doc explainDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return []string{fmt.Sprintf("explain: not valid JSON: %v", err)}
	}
	miss := func(what string) { findings = append(findings, "explain: missing "+what) }
	switch {
	case doc.RequestID == nil:
		miss("request_id")
	case *doc.RequestID == "":
		findings = append(findings, "explain: empty request_id")
	}
	if doc.Answers == nil {
		miss("answers")
	}
	if doc.Stats == nil || doc.Stats.NodesEvaluated == nil {
		miss("stats.nodes_evaluated")
	}
	if doc.Lattice == nil || doc.Lattice.Evaluated == nil || doc.Lattice.StopReason == nil {
		miss("lattice.{evaluated,stop_reason}")
	}
	if doc.NodeEvals == nil {
		miss("node_evals")
	}
	if doc.Trace == nil || doc.Trace.Name == nil {
		miss("trace.name")
	}
	if doc.Serving == nil || doc.Serving.Workers == nil {
		miss("serving.workers")
	}
	if len(findings) > 0 {
		return findings
	}
	if *doc.Trace.Name != "query" {
		findings = append(findings, fmt.Sprintf("explain: trace root is %q, want \"query\"", *doc.Trace.Name))
	}
	// A truncated response keeps a prefix of node_evals while the stats
	// still describe the full search; untruncated responses replay it all.
	switch got, want := len(*doc.NodeEvals), *doc.Stats.NodesEvaluated; {
	case doc.Truncated && got > want:
		findings = append(findings, fmt.Sprintf("explain: truncated response has %d node_evals, beyond stats.nodes_evaluated %d", got, want))
	case !doc.Truncated && got != want:
		findings = append(findings, fmt.Sprintf("explain: %d node_evals, stats.nodes_evaluated says %d", got, want))
	}
	if got, want := *doc.Lattice.Evaluated, *doc.Stats.NodesEvaluated; got != want {
		findings = append(findings, fmt.Sprintf("explain: lattice.evaluated %d != stats.nodes_evaluated %d", got, want))
	}
	if doc.Lattice.Generated != nil && *doc.Lattice.Generated < *doc.Lattice.Evaluated {
		findings = append(findings, fmt.Sprintf("explain: lattice.generated %d < evaluated %d", *doc.Lattice.Generated, *doc.Lattice.Evaluated))
	}
	return findings
}
