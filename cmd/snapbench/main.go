// Command snapbench measures the three engine startup paths — cold TSV
// parse+build, heap snapshot load, and zero-copy mapped snapshot open — as a
// real process, reporting wall time and resident set size in a
// machine-parseable line. The CI bench-scale job runs it against a 10×
// synthetic graph and asserts the structural claims the mapped path makes:
// it must be faster than the heap load and must keep less of the snapshot
// resident.
//
// Usage:
//
//	snapbench -mode build -graph kg.tsv -snapshot kg.snap
//	snapbench -mode heap -snapshot kg.snap -tuple 'Jerry Yang,Yahoo!'
//	snapbench -mode mmap -snapshot kg.snap -tuple 'Jerry Yang,Yahoo!'
//
// Output is one line of key=value pairs:
//
//	mode=mmap load_ms=3.18 vm_rss_kb=24196 entities=88046 facts=156292 mapped=true answers=10
//
// vm_rss_kb is VmRSS from /proc/self/status after a debug.FreeOSMemory
// pass (so Go-heap garbage from the load doesn't inflate the comparison);
// 0 on platforms without procfs. answers appears only when -tuple ran a
// query — which also proves the chosen path serves real traffic, not just
// opens.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"gqbe"
)

func main() {
	var (
		mode     = flag.String("mode", "", "build | heap | mmap (required)")
		graph    = flag.String("graph", "", "triples TSV (build mode)")
		snapshot = flag.String("snapshot", "", "snapshot path (required)")
		tuple    = flag.String("tuple", "", "comma-separated entity tuple to query after loading")
		k        = flag.Int("k", 10, "answers to request with -tuple")
	)
	flag.Parse()
	if *snapshot == "" || *mode == "" {
		fmt.Fprintln(os.Stderr, "snapbench: -mode and -snapshot are required")
		os.Exit(2)
	}

	start := time.Now()
	var (
		eng *gqbe.Engine
		err error
	)
	switch *mode {
	case "build":
		if *graph == "" {
			fmt.Fprintln(os.Stderr, "snapbench: build mode requires -graph")
			os.Exit(2)
		}
		if eng, err = gqbe.LoadFile(*graph); err == nil {
			err = eng.WriteSnapshotFile(*snapshot)
		}
	case "heap":
		eng, err = gqbe.LoadSnapshotFile(*snapshot)
	case "mmap":
		eng, err = gqbe.OpenSnapshotMapped(*snapshot)
	default:
		fmt.Fprintf(os.Stderr, "snapbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapbench: %v\n", err)
		os.Exit(1)
	}
	loadMS := float64(time.Since(start).Microseconds()) / 1000

	answers := -1
	if *tuple != "" {
		res, err := eng.Query(strings.Split(*tuple, ","), &gqbe.Options{K: *k})
		if err != nil {
			fmt.Fprintf(os.Stderr, "snapbench: query: %v\n", err)
			os.Exit(1)
		}
		answers = len(res.Answers)
	}

	// Return freed Go heap to the OS before sampling so RSS reflects what
	// the loaded engine actually keeps resident, not transient load garbage.
	debug.FreeOSMemory()
	fmt.Printf("mode=%s load_ms=%.2f vm_rss_kb=%d entities=%d facts=%d mapped=%v",
		*mode, loadMS, vmRSSKB(), eng.NumEntities(), eng.NumFacts(), eng.Mapped())
	if answers >= 0 {
		fmt.Printf(" answers=%d", answers)
	}
	fmt.Println()
}

// vmRSSKB reads VmRSS from /proc/self/status; 0 where procfs is absent.
func vmRSSKB() int64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmRSS:"); ok {
			kb, _ := strconv.ParseInt(strings.TrimSuffix(strings.TrimSpace(rest), " kB"), 10, 64)
			return kb
		}
	}
	return 0
}
