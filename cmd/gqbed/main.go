// Command gqbed is the GQBE query-serving daemon: it loads a knowledge graph
// once, preprocesses it in memory (the paper's offline phase), and serves
// query-by-example requests over an HTTP JSON API.
//
// Usage:
//
//	gqbed -graph kg.tsv [-addr :8080] [-max-concurrent 8] [-cache-entries 1024]
//	      [-build-shards 0] [-snapshot kg.snap] [-snapshot-write] [-snapshot-mmap]
//	      [-search-workers 1] [-trace] [-slow-query-ms 0]
//
// The complete flag reference and the /statz field glossary live in
// docs/OPERATIONS.md.
//
// Startup: with -snapshot pointing at an existing file, the daemon restores
// the preprocessed engine from the binary snapshot (large sequential reads,
// no triple parsing or index construction); otherwise it parses -graph and
// builds the store across -build-shards workers (0 = GOMAXPROCS), and with
// -snapshot-write also saves the result to -snapshot for the next restart.
// -snapshot-mmap opens the snapshot memory-mapped zero-copy instead: the
// engine's columns borrow the mapping, startup is O(sections), and the data
// pages are shared with the OS page cache across processes; /statz reports
// mapped: true with the mapping size. Mapping failures degrade to the heap
// loader, then to the -graph rebuild.
//
// Endpoints:
//
//	POST /v1/query          {"tuple":["Jerry Yang","Yahoo!"],"k":10,"timeout_ms":500}
//	                        {"tuples":[["Jerry Yang","Yahoo!"],["Sergey Brin","Google"]]}
//	POST /v1/query:batch    {"queries":[{"tuple":[...]},...]} — per-item results/errors
//	POST /v1/query:explain  one query's full breakdown: span tree, MQG,
//	                        lattice summary, per-node evaluation table
//	GET  /v1/entity/{name}  entity existence check
//	GET  /healthz           liveness + graph shape + engine generation
//	GET  /statz             serving metrics (QPS, latency percentiles, cache)
//	GET  /metrics           Prometheus text exposition (counters + histograms)
//	POST /admin/reload      hot-swap the engine from -snapshot/-graph (SIGHUP
//	                        does the same); a corrupt candidate is rejected
//	                        and the serving engine retained
//
// The daemon sheds load with 429 once all workers are busy, answers repeated
// queries from an LRU result cache, coalesces concurrent identical queries
// into one engine search, and cancels any query that exceeds its deadline.
// With -search-workers N each admitted search additionally fans its lattice
// exploration across N concurrent evaluators (identical answers, lower
// per-query latency; peak join memory scales with it).
// SIGINT/SIGTERM drain in-flight requests before exit.
//
// Observability: -slow-query-ms N logs a structured record (with the full
// per-stage span breakdown) for every request slower than N milliseconds;
// -trace traces every query and logs each at debug level. Both feed the same
// span machinery /v1/query:explain uses; neither changes any answer.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gqbe"
	"gqbe/internal/fault"
	"gqbe/internal/server"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "path to the knowledge graph (TSV triples), required")
		addr      = flag.String("addr", ":8080", "listen address")

		maxConcurrent = flag.Int("max-concurrent", 8, "max simultaneous lattice searches")
		queueWait     = flag.Duration("queue-wait", time.Second, "max wait for a worker slot before shedding with 429")
		timeout       = flag.Duration("timeout", 10*time.Second, "default per-query deadline")
		maxTimeout    = flag.Duration("max-timeout", 60*time.Second, "cap on client-requested deadlines")
		cacheEntries  = flag.Int("cache-entries", 1024, "result cache capacity in entries (negative disables)")
		cacheShards   = flag.Int("cache-shards", 16, "result cache shard count")
		cacheMinLat   = flag.Duration("cache-min-latency", time.Millisecond, "cache admission floor: don't cache results whose search was faster than this (negative caches everything)")
		batchItems    = flag.Int("max-batch-items", 64, "max queries per /v1/query:batch request")
		batchConc     = flag.Int("batch-concurrency", 4, "max engine searches one batch runs at once (capped at -max-concurrent)")
		searchWorkers = flag.Int("search-workers", 1, "concurrent lattice-node evaluators per search (1 = sequential, negative = GOMAXPROCS); answers are identical at any setting, but peak join memory scales with -max-concurrent × this")
		pprofAddr     = flag.String("pprof-addr", "", "optional address (e.g. 127.0.0.1:6060) serving net/http/pprof on a separate listener; empty disables")
		trace         = flag.Bool("trace", false, "trace every query (span tree + node evaluations) and log each at debug level; answers are unchanged")
		slowQueryMS   = flag.Int("slow-query-ms", 0, "log a structured slow-query record (full span breakdown) for requests slower than this many milliseconds; 0 disables")

		buildShards   = flag.Int("build-shards", 0, "concurrent workers for the offline store build (0 = GOMAXPROCS, 1 = sequential)")
		shardIndex    = flag.Int("shard-index", 0, "this daemon's answer-space shard index in a fleet of -shard-count (see cmd/kgshard; auto-adopted from shard snapshots)")
		shardCount    = flag.Int("shard-count", 0, "fleet shard count; 0/1 = unsharded. Each shard runs the full search and keeps only the answers it owns; a gqberouter in front merges them bit-identically")
		snapshotPath  = flag.String("snapshot", "", "binary engine snapshot path: loaded instead of -graph when it exists")
		snapshotWrite = flag.Bool("snapshot-write", false, "after building from -graph, write the engine snapshot to -snapshot")
		snapshotMmap  = flag.Bool("snapshot-mmap", false, "open -snapshot memory-mapped zero-copy (O(sections) startup, pages shared with the page cache) instead of decoding it onto the heap; falls back to the heap loader, then -graph, if mapping fails")

		faultSpec    = flag.String("fault", "", "fault-injection spec, e.g. 'exec.eval.panic:p=0.01,seed=7;snapio.read.flip:every=100' (testing/chaos only; empty disables)")
		staleServe   = flag.Bool("stale-serve", false, "serve retained cache entries (labeled stale, with an Age header) when live computation fails with a server-side error")
		staleTTL     = flag.Duration("stale-ttl", 0, "result-cache freshness horizon: older entries recompute but stay eligible for stale serving (0 = 1m default, negative = never stale)")
		brownoutQ    = flag.Int("brownout-queue", 0, "admission queue depth that engages brownout (clamped searches labeled browned_out); 0 disables")
		brownoutKP   = flag.Int("brownout-kprime", 0, "candidate-list clamp under brownout (0 = default 32)")
		brownoutEval = flag.Int("brownout-max-evaluations", 0, "lattice-evaluation cap under brownout (0 = default 512)")
	)
	flag.Parse()

	if *faultSpec != "" {
		cfg, err := fault.Parse(*faultSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gqbed: -fault: %v\n", err)
			os.Exit(2)
		}
		fault.Enable(cfg)
		log.Printf("gqbed: FAULT INJECTION ARMED: %s", *faultSpec)
	}

	if *graphPath == "" && *snapshotPath == "" {
		fmt.Fprintln(os.Stderr, "gqbed: -graph (or -snapshot) is required")
		flag.Usage()
		os.Exit(2)
	}
	if *snapshotWrite && *snapshotPath == "" {
		fmt.Fprintln(os.Stderr, "gqbed: -snapshot-write needs -snapshot")
		flag.Usage()
		os.Exit(2)
	}

	eng, err := loadEngine(*graphPath, *snapshotPath, *buildShards, *snapshotWrite, *snapshotMmap)
	if err != nil {
		log.Fatalf("gqbed: %v", err)
	}
	eng, err = applyShard(eng, *shardIndex, *shardCount)
	if err != nil {
		log.Fatalf("gqbed: %v", err)
	}
	info := eng.BuildInfo()
	how := fmt.Sprintf("built (%d shards)", info.Shards)
	if info.FromSnapshot {
		how = "snapshot-loaded"
	}
	if info.Mapped {
		how = fmt.Sprintf("snapshot-mapped (%d bytes zero-copy)", info.MappedBytes)
	}
	log.Printf("gqbed: %d entities, %d facts, %d predicates %s in %v",
		eng.NumEntities(), eng.NumFacts(), eng.NumPredicates(), how, info.BuildTime.Round(time.Millisecond))
	if i, n := eng.Shard(); n > 1 {
		log.Printf("gqbed: serving answer-space shard %d of %d", i, n)
	}

	// The structured logger feeds slow-query and trace records; -trace drops
	// the level to debug so per-query records are visible.
	logLevel := slog.LevelInfo
	if *trace {
		logLevel = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))

	cfg := server.Config{
		MaxConcurrent:       *maxConcurrent,
		MaxQueueWait:        *queueWait,
		DefaultTimeout:      *timeout,
		MaxTimeout:          *maxTimeout,
		CacheEntries:        *cacheEntries,
		CacheShards:         *cacheShards,
		CacheMinLatency:     *cacheMinLat,
		MaxBatchItems:       *batchItems,
		MaxBatchConcurrency: *batchConc,
		SearchWorkers:       *searchWorkers,
		Trace:               *trace,
		SlowQuery:           time.Duration(*slowQueryMS) * time.Millisecond,
		Logger:              logger,
		// Hot reload rebuilds from the same sources the boot load used
		// (snapshot preferred, graph fallback), so SIGHUP / POST
		// /admin/reload picks up a newly written snapshot or graph file
		// without a restart. A corrupt candidate is rejected by the loader
		// and the serving engine stays untouched.
		Reload: func() (*gqbe.Engine, error) {
			e, err := loadEngine(*graphPath, *snapshotPath, *buildShards, false, *snapshotMmap)
			if err != nil {
				return nil, err
			}
			// The reloaded engine must keep serving the same answer slice:
			// a mismatched shard snapshot is rejected and the old engine
			// stays, exactly like a corrupt one.
			return applyShard(e, *shardIndex, *shardCount)
		},
		StaleServe:             *staleServe,
		StaleTTL:               *staleTTL,
		BrownoutQueue:          *brownoutQ,
		BrownoutKPrime:         *brownoutKP,
		BrownoutMaxEvaluations: *brownoutEval,
	}.WithDefaults()
	srv := server.New(eng, cfg)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 5 * time.Second,
		// Bodies are at most ~1MB (the handler enforces it), so a stalled
		// or trickled upload must not pin a goroutine past this.
		ReadTimeout: 30 * time.Second,
		// The write window must cover the longest allowed request — queue
		// wait plus query deadline; a batch envelope is server-bounded to
		// the same ceiling — and the response itself; a finite bound keeps
		// slow-reading clients from holding connections (and their handler
		// goroutines) forever.
		WriteTimeout: cfg.MaxQueueWait + cfg.MaxTimeout + 30*time.Second,
		IdleTimeout:  60 * time.Second,
	}

	// The profiling endpoints get their own mux and listener so they are
	// never exposed on the serving address: perf investigations bind them to
	// loopback while the query API faces the world.
	if *pprofAddr != "" {
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("gqbed: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, pmux); err != nil {
				log.Printf("gqbed: pprof listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// SIGHUP triggers a hot reload (same effect as POST /admin/reload):
	// operators can swap in a freshly written snapshot without dropping a
	// single in-flight request. A failed reload only logs — the daemon keeps
	// serving the engine it has.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			log.Printf("gqbed: SIGHUP: hot reload requested")
			if gen, err := srv.Reload(); err != nil {
				log.Printf("gqbed: hot reload failed: %v", err)
			} else {
				log.Printf("gqbed: hot reload done, generation %d", gen)
			}
		}
	}()

	errc := make(chan error, 1)
	go func() {
		log.Printf("gqbed: serving on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("gqbed: %v", err)
	case <-ctx.Done():
	}

	log.Printf("gqbed: shutting down, draining in-flight requests")
	// The drain window must cover the longest request the server itself
	// admits: full queue wait plus the maximum query deadline (batch
	// envelopes are server-bounded to the same ceiling).
	shutdownCtx, cancel := context.WithTimeout(context.Background(),
		cfg.MaxQueueWait+cfg.MaxTimeout+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("gqbed: shutdown: %v", err)
	}
	log.Printf("gqbed: bye")
}

// applyShard reconciles the -shard-index/-shard-count flags with any shard
// identity the engine already carries (a v3 snapshot from cmd/kgshard
// records one). Flags absent: the snapshot identity — or none — stands.
// Flags present: they must agree with a recorded identity; serving a
// different slice than the file was partitioned for would silently drop
// answers fleet-wide, so a mismatch refuses to start rather than guess.
func applyShard(eng *gqbe.Engine, index, count int) (*gqbe.Engine, error) {
	if count <= 1 {
		return eng, nil
	}
	if si, sc := eng.Shard(); sc > 1 && (si != index || sc != count) {
		return nil, fmt.Errorf("snapshot is shard %d/%d but flags say %d/%d", si, sc, index, count)
	}
	return eng.WithShard(index, count)
}

// loadEngine resolves the startup path: an existing snapshot wins; otherwise
// the graph is parsed and the store built across buildShards workers, with
// the result optionally snapshotted for the next restart. A corrupt or
// version-skewed snapshot falls back to the graph build (and, with
// -snapshot-write, replaces the bad file) instead of refusing to start.
// With mmapOpen the snapshot is memory-mapped zero-copy first; a map
// failure (unsupported platform, injected fault) degrades to the heap
// loader before the graph rebuild, so the flag can never make a startable
// daemon unstartable.
func loadEngine(graphPath, snapshotPath string, buildShards int, snapshotWrite, mmapOpen bool) (*gqbe.Engine, error) {
	if snapshotPath != "" {
		if _, err := os.Stat(snapshotPath); err == nil {
			if mmapOpen {
				log.Printf("gqbed: mapping snapshot %s", snapshotPath)
				eng, err := gqbe.OpenSnapshotMapped(snapshotPath)
				if err == nil {
					return eng, nil
				}
				log.Printf("gqbed: snapshot map failed (%v); falling back to heap load", err)
			}
			log.Printf("gqbed: loading snapshot %s", snapshotPath)
			eng, err := gqbe.LoadSnapshotFile(snapshotPath)
			if err == nil {
				return eng, nil
			}
			if graphPath == "" {
				return nil, err
			}
			log.Printf("gqbed: snapshot unusable (%v); rebuilding from %s", err, graphPath)
		} else if graphPath == "" {
			return nil, fmt.Errorf("snapshot %s: %w", snapshotPath, err)
		} else if !os.IsNotExist(err) {
			// A present-but-unstattable snapshot (permissions, I/O error)
			// must not silently turn every restart into a slow rebuild.
			log.Printf("gqbed: snapshot %s unavailable (%v); rebuilding from %s", snapshotPath, err, graphPath)
		}
	}
	log.Printf("gqbed: loading %s", graphPath)
	eng, err := gqbe.LoadFileSharded(graphPath, buildShards)
	if err != nil {
		return nil, err
	}
	if snapshotWrite {
		start := time.Now()
		if err := eng.WriteSnapshotFile(snapshotPath); err != nil {
			// The engine is healthy; a failed snapshot write must not keep
			// the daemon down.
			log.Printf("gqbed: snapshot write failed: %v", err)
		} else {
			log.Printf("gqbed: snapshot written to %s in %v", snapshotPath, time.Since(start).Round(time.Millisecond))
		}
	}
	return eng, nil
}
