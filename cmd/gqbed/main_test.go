package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gqbe/internal/fault"
	"gqbe/internal/testkg"
)

// writeGraphTSV materializes the Fig. 1 test graph as a TSV triple file.
func writeGraphTSV(t *testing.T, dir string) string {
	t.Helper()
	var b strings.Builder
	for _, tr := range testkg.Fig1Triples() {
		b.WriteString(tr[0] + "\t" + tr[1] + "\t" + tr[2] + "\n")
	}
	path := filepath.Join(dir, "kg.tsv")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLoadEngineSnapshotRoundTrip: the boot path writes a snapshot on the
// first (graph-built) load and restores from it alone on the next.
func TestLoadEngineSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	graph := writeGraphTSV(t, dir)
	snap := filepath.Join(dir, "kg.snap")

	built, err := loadEngine(graph, snap, 1, true, false)
	if err != nil {
		t.Fatalf("build+snapshot load: %v", err)
	}
	restored, err := loadEngine("", snap, 1, false, false)
	if err != nil {
		t.Fatalf("snapshot-only load: %v", err)
	}
	if !restored.BuildInfo().FromSnapshot {
		t.Error("snapshot-only load did not report FromSnapshot")
	}
	if restored.NumEntities() != built.NumEntities() || restored.NumFacts() != built.NumFacts() {
		t.Errorf("restored engine shape %d/%d != built %d/%d",
			restored.NumEntities(), restored.NumFacts(), built.NumEntities(), built.NumFacts())
	}
}

// TestLoadEngineCorruptSnapshotFallsBack: a snapshot with a flipped byte is
// rejected by its checksum and the daemon rebuilds from the graph instead of
// refusing to start — unless there is no graph to fall back to, which must
// be a hard error rather than a silent empty engine.
func TestLoadEngineCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	graph := writeGraphTSV(t, dir)
	snap := filepath.Join(dir, "kg.snap")
	built, err := loadEngine(graph, snap, 1, true, false)
	if err != nil {
		t.Fatalf("build+snapshot load: %v", err)
	}

	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(snap, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	eng, err := loadEngine(graph, snap, 1, false, false)
	if err != nil {
		t.Fatalf("corrupt snapshot with graph fallback: %v", err)
	}
	if eng.BuildInfo().FromSnapshot {
		t.Error("corrupt snapshot was reported as loaded")
	}
	if eng.NumEntities() != built.NumEntities() || eng.NumFacts() != built.NumFacts() {
		t.Errorf("rebuilt engine shape %d/%d != original %d/%d",
			eng.NumEntities(), eng.NumFacts(), built.NumEntities(), built.NumFacts())
	}

	if _, err := loadEngine("", snap, 1, false, false); err == nil {
		t.Error("corrupt snapshot with no graph fallback loaded successfully")
	}
}

// TestLoadEngineInjectedSnapshotFaultFallsBack: the same fallback driven by
// the fault registry instead of byte surgery — an injected read error during
// the snapshot load (any transient I/O failure) must also end in a healthy
// graph-built engine.
func TestLoadEngineInjectedSnapshotFaultFallsBack(t *testing.T) {
	dir := t.TempDir()
	graph := writeGraphTSV(t, dir)
	snap := filepath.Join(dir, "kg.snap")
	built, err := loadEngine(graph, snap, 1, true, false)
	if err != nil {
		t.Fatalf("build+snapshot load: %v", err)
	}

	// After=3 lets the snapshot framing parse before the fault fires, so the
	// failure lands mid-load; Limit=1 keeps the graph rebuild clean.
	fault.Enable(fault.Config{fault.SnapioReadErr: {Every: 1, After: 3, Limit: 1}})
	defer fault.Disable()
	eng, err := loadEngine(graph, snap, 1, false, false)
	if err != nil {
		t.Fatalf("injected snapshot fault with graph fallback: %v", err)
	}
	if eng.BuildInfo().FromSnapshot {
		t.Error("fault-failed snapshot was reported as loaded")
	}
	if eng.NumEntities() != built.NumEntities() || eng.NumFacts() != built.NumFacts() {
		t.Errorf("rebuilt engine shape %d/%d != original %d/%d",
			eng.NumEntities(), eng.NumFacts(), built.NumEntities(), built.NumFacts())
	}
}
