// Command gqbe answers query-by-example queries over a knowledge graph
// stored as tab-separated triples.
//
// Usage:
//
//	gqbe -graph kg.tsv [-k 10] [-r 15] [-d 2] "Entity A" "Entity B"
//	gqbe -graph kg.tsv -tuple "Jerry Yang,Yahoo!" -tuple "Steve Wozniak,Apple Inc."
//
// Positional arguments form a single query tuple; repeated -tuple flags
// (comma-separated entities) form a multi-tuple query.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"gqbe"
)

type tupleFlags [][]string

func (t *tupleFlags) String() string { return fmt.Sprint([][]string(*t)) }

func (t *tupleFlags) Set(v string) error {
	parts := strings.Split(v, ",")
	tuple := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return fmt.Errorf("empty entity in tuple %q", v)
		}
		tuple = append(tuple, p)
	}
	*t = append(*t, tuple)
	return nil
}

func main() {
	var (
		graphPath = flag.String("graph", "", "path to the knowledge graph (TSV triples), required")
		k         = flag.Int("k", 10, "number of answers")
		kPrime    = flag.Int("kprime", 0, "stage-1 candidate pool (0 = default)")
		depth     = flag.Int("d", 2, "neighborhood path-length threshold")
		mqgSize   = flag.Int("r", 15, "maximal query graph edge budget")
		verbose   = flag.Bool("v", false, "print query statistics")
		tuples    tupleFlags
	)
	flag.Var(&tuples, "tuple", "query tuple as comma-separated entity names (repeatable)")
	flag.Parse()

	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "gqbe: -graph is required")
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() > 0 {
		tuples = append(tuples, flag.Args())
	}
	if len(tuples) == 0 {
		fmt.Fprintln(os.Stderr, "gqbe: provide a query tuple (positional entities or -tuple)")
		os.Exit(2)
	}

	eng, err := gqbe.LoadFile(*graphPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *verbose {
		fmt.Printf("loaded %d entities, %d facts, %d predicates\n",
			eng.NumEntities(), eng.NumFacts(), eng.NumPredicates())
	}

	opts := &gqbe.Options{K: *k, KPrime: *kPrime, Depth: *depth, MQGSize: *mqgSize}
	var res *gqbe.Result
	if len(tuples) == 1 {
		res, err = eng.Query(tuples[0], opts)
	} else {
		res, err = eng.QueryMulti(tuples, opts)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	for i, a := range res.Answers {
		fmt.Printf("%2d. ⟨%s⟩  score=%.4f\n", i+1, strings.Join(a.Entities, ", "), a.Score)
	}
	if len(res.Answers) == 0 {
		fmt.Println("no answers")
	}
	if *verbose {
		fmt.Printf("\nMQG edges: %d; lattice nodes evaluated: %d; discovery %v; processing %v\n",
			res.Stats.MQGEdges, res.Stats.NodesEvaluated, res.Stats.Discovery, res.Stats.Processing)
	}
}
