// Command gqbelint is the CI gate for the repo's behavioral invariants.
// It runs the internal/lint analyzer suite — determinism (no map-order,
// clock, or randomness dependence in the search coordinator), hotalloc
// (//gqbe:hotpath functions stay allocation-free), ctxflow (contexts are
// threaded, never re-minted), and sentinels (boundary errors wrap typed
// sentinels) — over the module's packages.
//
// Usage:
//
//	gqbelint [-summary file] [./... | dir ...]
//
// With no arguments or the literal pattern "./..." it lints every package
// under the current module. Findings print one per line on stderr as
// "path:line: rule: message"; -summary additionally appends a markdown
// table to the given file (pass "$GITHUB_STEP_SUMMARY" in CI). Exit
// status is 1 if there are findings, 2 if the tree fails to load.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"gqbe/internal/lint"
)

func main() {
	summary := flag.String("summary", "", "append a markdown summary of the run to this file")
	flag.Parse()

	pkgs, err := load(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "gqbelint: %v\n", err)
		os.Exit(2)
	}
	analyzers := lint.DefaultAnalyzers()
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	if *summary != "" {
		if err := appendSummary(*summary, renderSummary(len(pkgs), len(analyzers), diags)); err != nil {
			fmt.Fprintf(os.Stderr, "gqbelint: writing summary: %v\n", err)
			os.Exit(2)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gqbelint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// load resolves the argument patterns to typechecked packages. The only
// supported forms are "./..." (or nothing) for the whole module and
// explicit package directories.
func load(args []string) ([]*lint.Package, error) {
	loader := lint.NewLoader()
	if len(args) == 0 || (len(args) == 1 && args[0] == "./...") {
		return loader.LoadTree(".")
	}
	root, err := moduleRoot()
	if err != nil {
		return nil, err
	}
	modPath, err := lint.ModulePath(root)
	if err != nil {
		return nil, err
	}
	var pkgs []*lint.Package
	for _, arg := range args {
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, fmt.Errorf("resolving %s: %w", arg, err)
		}
		rel, err := filepath.Rel(root, abs)
		if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("%s is outside the module at %s", arg, root)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p, err := loader.LoadDir(abs, importPath)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// renderSummary produces the markdown block appended to -summary: a
// one-line verdict plus, when there are findings, a rule/location table.
func renderSummary(pkgCount, analyzerCount int, diags []lint.Diagnostic) string {
	var b []byte
	b = append(b, "## gqbelint\n\n"...)
	if len(diags) == 0 {
		b = append(b, fmt.Sprintf("✅ %d packages clean under %d analyzers.\n", pkgCount, analyzerCount)...)
		return string(b)
	}
	b = append(b, fmt.Sprintf("❌ %d finding(s) across %d packages (%d analyzers).\n\n", len(diags), pkgCount, analyzerCount)...)
	b = append(b, "| Location | Rule | Message |\n|---|---|---|\n"...)
	for _, d := range diags {
		b = append(b, fmt.Sprintf("| `%s:%d` | %s | %s |\n", d.Pos.Filename, d.Pos.Line, d.Rule, escapePipes(d.Message))...)
	}
	return string(b)
}

// escapePipes keeps diagnostic messages from breaking the markdown table.
func escapePipes(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '|' {
			out = append(out, '\\')
		}
		out = append(out, s[i])
	}
	return string(out)
}

// appendSummary appends the block to path, creating it if needed.
func appendSummary(path, block string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteString(block)
	return err
}
