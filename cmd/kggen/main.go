// Command kggen generates the synthetic knowledge graphs this repository
// uses in place of the Freebase and DBpedia dumps, writing them as
// tab-separated triples plus a companion .workload.tsv file listing each
// benchmark query's ground-truth table.
//
// Usage:
//
//	kggen -dataset freebase -seed 42 -scale 1.0 -out freebase.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"gqbe/internal/kgsynth"
	"gqbe/internal/triples"
)

func main() {
	var (
		dataset = flag.String("dataset", "freebase", "freebase or dbpedia")
		seed    = flag.Int64("seed", 42, "generator seed")
		scale   = flag.Float64("scale", 1.0, "domain size multiplier")
		out     = flag.String("out", "", "output triples path (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "kggen: -out is required")
		os.Exit(2)
	}
	cfg := kgsynth.Config{Seed: *seed, Scale: *scale}
	var ds *kgsynth.Dataset
	switch *dataset {
	case "freebase":
		ds = kgsynth.Freebase(cfg)
	case "dbpedia":
		ds = kgsynth.DBpedia(cfg)
	default:
		fmt.Fprintf(os.Stderr, "kggen: unknown dataset %q\n", *dataset)
		os.Exit(2)
	}
	// Stream the triples line by line: the sorted Write materializes every
	// rendered line before emitting, which OOMs on multi-GB -scale graphs.
	if err := triples.WriteStreamFile(*out, ds.Graph); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	wl := *out + ".workload.tsv"
	if err := writeWorkload(wl, ds); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d nodes, %d edges, %d labels → %s (+ %s)\n",
		ds.Name, ds.Graph.NumNodes(), ds.Graph.NumEdges(), ds.Graph.NumLabels(), *out, wl)
}

// writeWorkload emits one line per ground-truth row: queryID \t entity \t ...
func writeWorkload(path string, ds *kgsynth.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("kggen: %w", err)
	}
	w := bufio.NewWriter(f)
	for _, q := range ds.Queries {
		for _, row := range q.Table {
			fmt.Fprintf(w, "%s", q.ID)
			for _, e := range row {
				fmt.Fprintf(w, "\t%s", e)
			}
			fmt.Fprintln(w)
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("kggen: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("kggen: %w", err)
	}
	return nil
}
