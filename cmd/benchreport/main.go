// Command benchreport renders a benchstat-style regression table comparing
// a `go test -bench` run against the checked-in baseline shapes in
// BENCH_engine.json, and optionally enforces a small set of SLO
// constraints. CI runs the table on every PR so perf drift is visible, and
// gates merges on the -slo constraints only — a handful of
// deliberately-loose bounds on the benchmarks that matter, instead of a
// noisy threshold across all of them.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/... | benchreport -baseline BENCH_engine.json
//	... | benchreport -slo 'SearchF1<=+10%,SnapshotLoadMapped<=0.25*ParseBuild'
//
// The baseline JSON is the repo's bench-trajectory format: a "results"
// object of sections, each mapping benchmark names to either a plain
// {"ns_op": ...} record or a {"before": ..., "after": ...} pair (the
// "after" shape is the baseline).
//
// SLO constraints come in two forms, comma-separated:
//
//	Name<=+P%      current ns/op at most P percent above Name's baseline
//	Name<=F*Other  current ns/op at most F times Other's CURRENT ns/op
//
// The ratio form compares two benchmarks from the same run, so it is
// machine-speed independent — the right shape for structural guarantees
// like "the mapped snapshot open costs at most a quarter of a cold parse".
// A benchmark missing from the run (or, for the %-form, the baseline) fails
// its constraint: an SLO that silently stopped being measured is not met.
// Without -slo the tool always exits 0 (report, not gate); with -slo it
// exits 1 when any constraint fails.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name string // e.g. "StoreBuildSharded/shards=8" (Benchmark prefix and -P suffix stripped)
	NsOp float64
}

// benchRe matches "BenchmarkName[-P] <iters> <ns> ns/op ...".
var benchRe = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op`)

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(r io.Reader) ([]benchLine, error) {
	var out []benchLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out = append(out, benchLine{Name: canonicalName(m[1]), NsOp: ns})
	}
	return out, sc.Err()
}

// canonicalName strips the Benchmark prefix and the trailing -P GOMAXPROCS
// suffix (absent when GOMAXPROCS=1) from a bench name, leaving sub-bench
// paths intact.
func canonicalName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	// The -P suffix attaches to the last path element only.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// loadBaseline flattens the baseline JSON's results sections into
// name → ns/op. Records with before/after pairs contribute their "after".
func loadBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Results map[string]map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	type record struct {
		NsOp  *float64 `json:"ns_op"`
		After *struct {
			NsOp float64 `json:"ns_op"`
		} `json:"after"`
	}
	out := make(map[string]float64)
	for _, section := range doc.Results {
		for name, rawRec := range section {
			var rec record
			if err := json.Unmarshal(rawRec, &rec); err != nil {
				continue // prose fields like notes live beside records
			}
			switch {
			case rec.After != nil:
				out[name] = rec.After.NsOp
			case rec.NsOp != nil:
				out[name] = *rec.NsOp
			}
		}
	}
	return out, nil
}

// report renders the markdown comparison table and returns the regression
// count (current > threshold × baseline).
func report(w io.Writer, lines []benchLine, baseline map[string]float64, threshold float64) int {
	sort.Slice(lines, func(i, j int) bool { return lines[i].Name < lines[j].Name })
	fmt.Fprintln(w, "### Bench regression report")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Threshold ×%.2f against the checked-in baseline; 1-iteration numbers are noisy — treat ⚠ rows as pointers, not verdicts.\n", threshold)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| benchmark | baseline ns/op | current ns/op | Δ | |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	regressions := 0
	for _, l := range lines {
		base, ok := baseline[l.Name]
		if !ok || base <= 0 {
			fmt.Fprintf(w, "| %s | — | %.0f | — | new |\n", l.Name, l.NsOp)
			continue
		}
		delta := (l.NsOp - base) / base * 100
		flag := ""
		if l.NsOp > base*threshold {
			flag = "⚠ regression"
			regressions++
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %+.1f%% | %s |\n", l.Name, base, l.NsOp, delta, flag)
	}
	fmt.Fprintln(w)
	if regressions > 0 {
		fmt.Fprintf(w, "**%d benchmark(s) above threshold.**\n", regressions)
	} else {
		fmt.Fprintln(w, "No benchmarks above threshold.")
	}
	return regressions
}

// sloConstraint is one parsed -slo entry.
type sloConstraint struct {
	name string // benchmark under constraint
	// Exactly one of the two bounds is active:
	pctOver float64 // "<=+P%": max percent over baseline (relative form)
	other   string  // "<=F*Other": compare against this benchmark's current ns/op
	factor  float64 // the F in "<=F*Other"
	isRatio bool
}

var (
	sloPctRe   = regexp.MustCompile(`^(\S+?)<=\+([0-9.]+)%$`)
	sloRatioRe = regexp.MustCompile(`^(\S+?)<=([0-9.]+)\*(\S+)$`)
)

// parseSLO parses a comma-separated constraint list.
func parseSLO(spec string) ([]sloConstraint, error) {
	var out []sloConstraint
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if m := sloPctRe.FindStringSubmatch(part); m != nil {
			pct, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("slo %q: %w", part, err)
			}
			out = append(out, sloConstraint{name: m[1], pctOver: pct})
			continue
		}
		if m := sloRatioRe.FindStringSubmatch(part); m != nil {
			f, err := strconv.ParseFloat(m[2], 64)
			if err != nil {
				return nil, fmt.Errorf("slo %q: %w", part, err)
			}
			out = append(out, sloConstraint{name: m[1], other: m[3], factor: f, isRatio: true})
			continue
		}
		return nil, fmt.Errorf("slo %q: want Name<=+P%% or Name<=F*Other", part)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("slo %q: no constraints", spec)
	}
	return out, nil
}

// checkSLO evaluates constraints against the run and baseline, printing one
// verdict line each, and returns the number of failures.
func checkSLO(w io.Writer, cons []sloConstraint, lines []benchLine, baseline map[string]float64) int {
	current := make(map[string]float64, len(lines))
	for _, l := range lines {
		current[l.Name] = l.NsOp
	}
	failures := 0
	for _, c := range cons {
		cur, ok := current[c.name]
		if !ok {
			fmt.Fprintf(w, "SLO FAIL: %s not present in this bench run\n", c.name)
			failures++
			continue
		}
		if c.isRatio {
			ref, ok := current[c.other]
			if !ok {
				fmt.Fprintf(w, "SLO FAIL: %s not present in this bench run (needed by %s<=%g*%s)\n",
					c.other, c.name, c.factor, c.other)
				failures++
				continue
			}
			limit := c.factor * ref
			verdict := "PASS"
			if cur > limit {
				verdict = "FAIL"
				failures++
			}
			fmt.Fprintf(w, "SLO %s: %s<=%g*%s — %.0f ns/op vs limit %.0f (%s = %.0f)\n",
				verdict, c.name, c.factor, c.other, cur, limit, c.other, ref)
			continue
		}
		base, ok := baseline[c.name]
		if !ok || base <= 0 {
			fmt.Fprintf(w, "SLO FAIL: %s has no baseline entry\n", c.name)
			failures++
			continue
		}
		limit := base * (1 + c.pctOver/100)
		verdict := "PASS"
		if cur > limit {
			verdict = "FAIL"
			failures++
		}
		fmt.Fprintf(w, "SLO %s: %s<=+%g%% — %.0f ns/op vs limit %.0f (baseline %.0f, %+.1f%%)\n",
			verdict, c.name, c.pctOver, cur, limit, base, (cur-base)/base*100)
	}
	return failures
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_engine.json", "baseline JSON (repo bench-trajectory format)")
		inputPath    = flag.String("input", "-", "bench output file ('-' = stdin)")
		threshold    = flag.Float64("threshold", 1.30, "flag current > threshold × baseline")
		sloSpec      = flag.String("slo", "", "blocking constraints, e.g. 'SearchF1<=+10%,SnapshotLoadMapped<=0.25*ParseBuild' (exit 1 on violation)")
	)
	flag.Parse()

	var slos []sloConstraint
	if *sloSpec != "" {
		var err error
		if slos, err = parseSLO(*sloSpec); err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(2)
		}
	}

	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(2)
	}
	in := os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	lines, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(2)
	}
	if len(lines) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines in input")
		os.Exit(2)
	}
	// The table never fails the run (1x numbers are noisy across the board);
	// only the explicit SLO constraints gate.
	report(os.Stdout, lines, baseline, *threshold)
	if len(slos) > 0 {
		fmt.Println()
		if failures := checkSLO(os.Stdout, slos, lines, baseline); failures > 0 {
			fmt.Printf("\n**%d SLO constraint(s) violated.**\n", failures)
			os.Exit(1)
		}
	}
}
