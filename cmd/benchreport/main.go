// Command benchreport renders a benchstat-style regression table comparing
// a `go test -bench` run against the checked-in baseline shapes in
// BENCH_engine.json. CI runs it on every PR (non-blocking, output appended
// to the job summary) so perf drift is visible without gating merges on
// noisy 1-iteration numbers.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./internal/... | benchreport -baseline BENCH_engine.json
//
// The baseline JSON is the repo's bench-trajectory format: a "results"
// object of sections, each mapping benchmark names to either a plain
// {"ns_op": ...} record or a {"before": ..., "after": ...} pair (the
// "after" shape is the baseline). The tool always exits 0: it is a report,
// not a gate — regressions are flagged in the table with ⚠.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine is one parsed benchmark result.
type benchLine struct {
	Name string // e.g. "StoreBuildSharded/shards=8" (Benchmark prefix and -P suffix stripped)
	NsOp float64
}

// benchRe matches "BenchmarkName[-P] <iters> <ns> ns/op ...".
var benchRe = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.e+]+) ns/op`)

// parseBench extracts benchmark results from `go test -bench` output.
func parseBench(r io.Reader) ([]benchLine, error) {
	var out []benchLine
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		m := benchRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		out = append(out, benchLine{Name: canonicalName(m[1]), NsOp: ns})
	}
	return out, sc.Err()
}

// canonicalName strips the Benchmark prefix and the trailing -P GOMAXPROCS
// suffix (absent when GOMAXPROCS=1) from a bench name, leaving sub-bench
// paths intact.
func canonicalName(name string) string {
	name = strings.TrimPrefix(name, "Benchmark")
	// The -P suffix attaches to the last path element only.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	return name
}

// loadBaseline flattens the baseline JSON's results sections into
// name → ns/op. Records with before/after pairs contribute their "after".
func loadBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Results map[string]map[string]json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	type record struct {
		NsOp  *float64 `json:"ns_op"`
		After *struct {
			NsOp float64 `json:"ns_op"`
		} `json:"after"`
	}
	out := make(map[string]float64)
	for _, section := range doc.Results {
		for name, rawRec := range section {
			var rec record
			if err := json.Unmarshal(rawRec, &rec); err != nil {
				continue // prose fields like notes live beside records
			}
			switch {
			case rec.After != nil:
				out[name] = rec.After.NsOp
			case rec.NsOp != nil:
				out[name] = *rec.NsOp
			}
		}
	}
	return out, nil
}

// report renders the markdown comparison table and returns the regression
// count (current > threshold × baseline).
func report(w io.Writer, lines []benchLine, baseline map[string]float64, threshold float64) int {
	sort.Slice(lines, func(i, j int) bool { return lines[i].Name < lines[j].Name })
	fmt.Fprintln(w, "### Bench regression report")
	fmt.Fprintln(w)
	fmt.Fprintf(w, "Threshold ×%.2f against the checked-in baseline; 1-iteration numbers are noisy — treat ⚠ rows as pointers, not verdicts.\n", threshold)
	fmt.Fprintln(w)
	fmt.Fprintln(w, "| benchmark | baseline ns/op | current ns/op | Δ | |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---|")
	regressions := 0
	for _, l := range lines {
		base, ok := baseline[l.Name]
		if !ok || base <= 0 {
			fmt.Fprintf(w, "| %s | — | %.0f | — | new |\n", l.Name, l.NsOp)
			continue
		}
		delta := (l.NsOp - base) / base * 100
		flag := ""
		if l.NsOp > base*threshold {
			flag = "⚠ regression"
			regressions++
		}
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %+.1f%% | %s |\n", l.Name, base, l.NsOp, delta, flag)
	}
	fmt.Fprintln(w)
	if regressions > 0 {
		fmt.Fprintf(w, "**%d benchmark(s) above threshold.**\n", regressions)
	} else {
		fmt.Fprintln(w, "No benchmarks above threshold.")
	}
	return regressions
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_engine.json", "baseline JSON (repo bench-trajectory format)")
		inputPath    = flag.String("input", "-", "bench output file ('-' = stdin)")
		threshold    = flag.Float64("threshold", 1.30, "flag current > threshold × baseline")
	)
	flag.Parse()

	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(2)
	}
	in := os.Stdin
	if *inputPath != "-" {
		f, err := os.Open(*inputPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		in = f
	}
	lines, err := parseBench(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: %v\n", err)
		os.Exit(2)
	}
	if len(lines) == 0 {
		fmt.Fprintln(os.Stderr, "benchreport: no benchmark lines in input")
		os.Exit(2)
	}
	// Report only: regressions never fail the run (1x numbers are noisy).
	report(os.Stdout, lines, baseline, *threshold)
}
