package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: gqbe/internal/storage
BenchmarkStoreBuild-8             	     442	   2567583 ns/op	 1564225 B/op	    5278 allocs/op
BenchmarkStoreBuildSharded/shards=8-8 	     100	   1200000 ns/op
BenchmarkStoreProbe             	    1604	    662160 ns/op	       0 B/op	       0 allocs/op
BenchmarkSnapshotLoad            	     500	   1000000 ns/op	 123 MB/s
PASS
ok  	gqbe/internal/storage	5.094s
`

const sampleBaseline = `{
  "results": {
    "storage": {
      "StoreBuild": {
        "before": { "ns_op": 5668963 },
        "after": { "ns_op": 2567583 }
      },
      "StoreProbe": { "after": { "ns_op": 400000 } }
    },
    "startup": {
      "SnapshotLoad": { "ns_op": 900000 },
      "notes": "prose beside records must not break parsing"
    }
  }
}`

func TestParseBench(t *testing.T) {
	lines, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"StoreBuild":                 2567583,
		"StoreBuildSharded/shards=8": 1200000,
		"StoreProbe":                 662160, // no -P suffix (GOMAXPROCS=1)
		"SnapshotLoad":               1000000,
	}
	if len(lines) != len(want) {
		t.Fatalf("parsed %d lines, want %d: %+v", len(lines), len(want), lines)
	}
	for _, l := range lines {
		if want[l.Name] != l.NsOp {
			t.Errorf("%s = %v, want %v", l.Name, l.NsOp, want[l.Name])
		}
	}
}

func TestCanonicalName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkStoreBuild-8":              "StoreBuild",
		"BenchmarkStoreBuild":                "StoreBuild",
		"BenchmarkB/shards=8-16":             "B/shards=8",
		"BenchmarkSearchF1-1":                "SearchF1",
		"BenchmarkTableII_CaseStudy-8":       "TableII_CaseStudy",
		"BenchmarkServerLoad/poisson-8":      "ServerLoad/poisson",
		"BenchmarkEvaluateMinimalTree-profX": "EvaluateMinimalTree-profX", // non-numeric suffix kept
	} {
		if got := canonicalName(in); got != want {
			t.Errorf("canonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadBaselineAndReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if baseline["StoreBuild"] != 2567583 {
		t.Errorf("StoreBuild baseline = %v (want after-shape 2567583)", baseline["StoreBuild"])
	}
	if baseline["SnapshotLoad"] != 900000 {
		t.Errorf("SnapshotLoad baseline = %v", baseline["SnapshotLoad"])
	}
	lines, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	regressions := report(&buf, lines, baseline, 1.30)
	out := buf.String()
	// StoreProbe is 662160 vs 400000 baseline (+65%) → flagged; SnapshotLoad
	// is +11% → not flagged; StoreBuildSharded has no baseline → "new".
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1\n%s", regressions, out)
	}
	if !strings.Contains(out, "⚠ regression") {
		t.Errorf("report misses the regression flag:\n%s", out)
	}
	if !strings.Contains(out, "| StoreBuildSharded/shards=8 | — | 1200000 | — | new |") {
		t.Errorf("report misses the new-bench row:\n%s", out)
	}
	if !strings.Contains(out, "+0.0%") {
		t.Errorf("report misses the unchanged StoreBuild row:\n%s", out)
	}
}

func TestRealBaselineParses(t *testing.T) {
	// The tool must understand the repo's actual BENCH_engine.json.
	baseline, err := loadBaseline("../../BENCH_engine.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("no baselines parsed from BENCH_engine.json")
	}
	for _, name := range []string{"StoreBuild", "SearchF1", "SnapshotLoad"} {
		if _, ok := baseline[name]; !ok {
			t.Errorf("BENCH_engine.json missing baseline for %s", name)
		}
	}
}
