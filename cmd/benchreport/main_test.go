package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: gqbe/internal/storage
BenchmarkStoreBuild-8             	     442	   2567583 ns/op	 1564225 B/op	    5278 allocs/op
BenchmarkStoreBuildSharded/shards=8-8 	     100	   1200000 ns/op
BenchmarkStoreProbe             	    1604	    662160 ns/op	       0 B/op	       0 allocs/op
BenchmarkSnapshotLoad            	     500	   1000000 ns/op	 123 MB/s
PASS
ok  	gqbe/internal/storage	5.094s
`

const sampleBaseline = `{
  "results": {
    "storage": {
      "StoreBuild": {
        "before": { "ns_op": 5668963 },
        "after": { "ns_op": 2567583 }
      },
      "StoreProbe": { "after": { "ns_op": 400000 } }
    },
    "startup": {
      "SnapshotLoad": { "ns_op": 900000 },
      "notes": "prose beside records must not break parsing"
    }
  }
}`

func TestParseBench(t *testing.T) {
	lines, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"StoreBuild":                 2567583,
		"StoreBuildSharded/shards=8": 1200000,
		"StoreProbe":                 662160, // no -P suffix (GOMAXPROCS=1)
		"SnapshotLoad":               1000000,
	}
	if len(lines) != len(want) {
		t.Fatalf("parsed %d lines, want %d: %+v", len(lines), len(want), lines)
	}
	for _, l := range lines {
		if want[l.Name] != l.NsOp {
			t.Errorf("%s = %v, want %v", l.Name, l.NsOp, want[l.Name])
		}
	}
}

func TestCanonicalName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkStoreBuild-8":              "StoreBuild",
		"BenchmarkStoreBuild":                "StoreBuild",
		"BenchmarkB/shards=8-16":             "B/shards=8",
		"BenchmarkSearchF1-1":                "SearchF1",
		"BenchmarkTableII_CaseStudy-8":       "TableII_CaseStudy",
		"BenchmarkServerLoad/poisson-8":      "ServerLoad/poisson",
		"BenchmarkEvaluateMinimalTree-profX": "EvaluateMinimalTree-profX", // non-numeric suffix kept
	} {
		if got := canonicalName(in); got != want {
			t.Errorf("canonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestLoadBaselineAndReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(sampleBaseline), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if baseline["StoreBuild"] != 2567583 {
		t.Errorf("StoreBuild baseline = %v (want after-shape 2567583)", baseline["StoreBuild"])
	}
	if baseline["SnapshotLoad"] != 900000 {
		t.Errorf("SnapshotLoad baseline = %v", baseline["SnapshotLoad"])
	}
	lines, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	regressions := report(&buf, lines, baseline, 1.30)
	out := buf.String()
	// StoreProbe is 662160 vs 400000 baseline (+65%) → flagged; SnapshotLoad
	// is +11% → not flagged; StoreBuildSharded has no baseline → "new".
	if regressions != 1 {
		t.Errorf("regressions = %d, want 1\n%s", regressions, out)
	}
	if !strings.Contains(out, "⚠ regression") {
		t.Errorf("report misses the regression flag:\n%s", out)
	}
	if !strings.Contains(out, "| StoreBuildSharded/shards=8 | — | 1200000 | — | new |") {
		t.Errorf("report misses the new-bench row:\n%s", out)
	}
	if !strings.Contains(out, "+0.0%") {
		t.Errorf("report misses the unchanged StoreBuild row:\n%s", out)
	}
}

func TestParseSLO(t *testing.T) {
	cons, err := parseSLO("SearchF1<=+10%, SnapshotLoadMapped<=0.25*ParseBuild")
	if err != nil {
		t.Fatal(err)
	}
	if len(cons) != 2 {
		t.Fatalf("parsed %d constraints, want 2", len(cons))
	}
	if c := cons[0]; c.isRatio || c.name != "SearchF1" || c.pctOver != 10 {
		t.Errorf("pct constraint = %+v", c)
	}
	if c := cons[1]; !c.isRatio || c.name != "SnapshotLoadMapped" || c.other != "ParseBuild" || c.factor != 0.25 {
		t.Errorf("ratio constraint = %+v", c)
	}
	for _, bad := range []string{"", "SearchF1<=10%", "SearchF1>=+10%", "A<=B*C", "A<=+x%"} {
		if _, err := parseSLO(bad); err == nil {
			t.Errorf("parseSLO(%q) accepted", bad)
		}
	}
}

func TestCheckSLO(t *testing.T) {
	lines := []benchLine{
		{Name: "SearchF1", NsOp: 1050},
		{Name: "SearchF18", NsOp: 2500},
		{Name: "SnapshotLoadMapped", NsOp: 20},
		{Name: "ParseBuild", NsOp: 100},
	}
	baseline := map[string]float64{"SearchF1": 1000, "SearchF18": 2000}
	check := func(spec string, wantFails int, wantOut ...string) {
		t.Helper()
		cons, err := parseSLO(spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf strings.Builder
		if got := checkSLO(&buf, cons, lines, baseline); got != wantFails {
			t.Errorf("%s: failures = %d, want %d\n%s", spec, got, wantFails, buf.String())
		}
		for _, w := range wantOut {
			if !strings.Contains(buf.String(), w) {
				t.Errorf("%s: output missing %q:\n%s", spec, w, buf.String())
			}
		}
	}
	// +5% over baseline passes a 10% bound, +25% fails it.
	check("SearchF1<=+10%", 0, "SLO PASS")
	check("SearchF18<=+10%", 1, "SLO FAIL")
	// 20 vs 0.25×100=25 passes; 0.1×100=10 fails.
	check("SnapshotLoadMapped<=0.25*ParseBuild", 0, "SLO PASS")
	check("SnapshotLoadMapped<=0.1*ParseBuild", 1, "SLO FAIL")
	// Missing benchmarks and baselines fail rather than silently pass.
	check("Absent<=+10%", 1, "not present")
	check("SearchF1<=1.0*Absent", 1, "not present")
	check("ParseBuild<=+10%", 1, "no baseline entry")
	check("SearchF1<=+10%,SearchF18<=+10%,SnapshotLoadMapped<=0.25*ParseBuild", 1)
}

func TestRealBaselineParses(t *testing.T) {
	// The tool must understand the repo's actual BENCH_engine.json.
	baseline, err := loadBaseline("../../BENCH_engine.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) == 0 {
		t.Fatal("no baselines parsed from BENCH_engine.json")
	}
	for _, name := range []string{"StoreBuild", "SearchF1", "SnapshotLoad"} {
		if _, ok := baseline[name]; !ok {
			t.Errorf("BENCH_engine.json missing baseline for %s", name)
		}
	}
}
