package gqbe

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestQueryCtxExpiredDeadline(t *testing.T) {
	e := fig1Engine(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // guarantee the deadline has passed
	_, err := e.QueryCtx(ctx, []string{"Jerry Yang", "Yahoo!"}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryCtxCanceled(t *testing.T) {
	e := fig1Engine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.QueryCtx(ctx, []string{"Jerry Yang", "Yahoo!"}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := e.QueryMultiCtx(ctx, [][]string{
		{"Jerry Yang", "Yahoo!"},
		{"Sergey Brin", "Google"},
	}, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("multi err = %v, want context.Canceled", err)
	}
}

func TestQueryCtxBackgroundMatchesQuery(t *testing.T) {
	e := fig1Engine(t)
	opts := &Options{K: 5, KPrime: 10, MQGSize: 10}
	plain, err := e.Query([]string{"Jerry Yang", "Yahoo!"}, opts)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	withCtx, err := e.QueryCtx(context.Background(), []string{"Jerry Yang", "Yahoo!"}, opts)
	if err != nil {
		t.Fatalf("QueryCtx: %v", err)
	}
	if len(plain.Answers) != len(withCtx.Answers) {
		t.Fatalf("answer counts differ: %d vs %d", len(plain.Answers), len(withCtx.Answers))
	}
	for i := range plain.Answers {
		if plain.Answers[i].Score != withCtx.Answers[i].Score {
			t.Errorf("answer %d: score %v vs %v", i, plain.Answers[i].Score, withCtx.Answers[i].Score)
		}
	}
}

func TestErrUnknownEntity(t *testing.T) {
	e := fig1Engine(t)
	_, err := e.Query([]string{"Nobody", "Yahoo!"}, nil)
	if !errors.Is(err, ErrUnknownEntity) {
		t.Fatalf("err = %v, want ErrUnknownEntity", err)
	}
}

func TestStatsStoppedReason(t *testing.T) {
	e := fig1Engine(t)
	res, err := e.Query([]string{"Jerry Yang", "Yahoo!"}, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	switch res.Stats.Stopped {
	case "topk-proven", "frontier-exhausted", "max-evaluations":
	default:
		t.Errorf("Stopped = %q, want a known stop reason", res.Stats.Stopped)
	}

	capped, err := e.Query([]string{"Jerry Yang", "Yahoo!"}, &Options{MaxEvaluations: 1})
	if err != nil {
		t.Fatalf("capped Query: %v", err)
	}
	if capped.Stats.Stopped != "max-evaluations" {
		t.Errorf("capped Stopped = %q, want max-evaluations", capped.Stats.Stopped)
	}
	if capped.Stats.Terminated {
		t.Error("capped query reported Terminated (top-k proof) — it stopped on the safety valve")
	}
}
