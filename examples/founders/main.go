// Founders: the paper's §I motivating scenario at benchmark scale. A
// business analyst wants "entrepreneurs who founded technology companies"
// but knows only one example pair. We generate the Freebase-like synthetic
// graph (the repository's substitute for the real Freebase dump), pick the
// F18 workload query, and check GQBE's answers against the planted
// ground-truth founder table.
//
// Run with: go run ./examples/founders
package main

import (
	"fmt"
	"log"
	"strings"

	"gqbe"
	"gqbe/internal/kgsynth"
)

func main() {
	ds := kgsynth.Freebase(kgsynth.Config{Seed: 42, Scale: 0.5})
	fmt.Printf("synthetic knowledge graph: %d entities, %d facts, %d predicates\n",
		ds.Graph.NumNodes(), ds.Graph.NumEdges(), ds.Graph.NumLabels())

	// Move the generated graph through the public API the way a user would:
	// triples in, engine out.
	b := gqbe.NewBuilder()
	ds.Graph.EdgesAsTriples(func(s, p, o string) {
		b.Add(s, p, o)
	})
	eng, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	q := ds.MustQuery("F18") // founders and their technology companies
	example := q.QueryTuple()
	fmt.Printf("\nexample tuple: ⟨%s⟩\n\n", strings.Join(example, ", "))

	res, err := eng.Query(example, &gqbe.Options{K: 15})
	if err != nil {
		log.Fatal(err)
	}

	truth := make(map[string]bool)
	for _, row := range q.GroundTruth(1) {
		truth[strings.Join(row, "|")] = true
	}
	hits := 0
	for i, a := range res.Answers {
		mark := " "
		if truth[strings.Join(a.Entities, "|")] {
			mark = "✓"
			hits++
		}
		fmt.Printf("%2d. %s ⟨%s⟩  score=%.3f\n", i+1, mark, strings.Join(a.Entities, ", "), a.Score)
	}
	fmt.Printf("\n%d of %d answers are in the ground-truth founder table\n", hits, len(res.Answers))
	fmt.Printf("stats: MQG %d edges, %d lattice nodes evaluated, %v discovery + %v search\n",
		res.Stats.MQGEdges, res.Stats.NodesEvaluated, res.Stats.Discovery, res.Stats.Processing)
}
