// DBpedia: query-by-example over the DBpedia-like dataset through the
// file-based API. The graph is generated, written to disk as TSV triples,
// loaded back — the round trip a real deployment would take — and queried
// with the D8 workload example (language designers, the paper's
// ⟨Bjarne Stroustrup, C++⟩).
//
// Run with: go run ./examples/dbpedia
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"gqbe"
	"gqbe/internal/kgsynth"
	"gqbe/internal/triples"
)

func main() {
	ds := kgsynth.DBpedia(kgsynth.Config{Seed: 42, Scale: 0.5})

	dir, err := os.MkdirTemp("", "gqbe-dbpedia")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "dbpedia.tsv")
	if err := triples.WriteFile(path, ds.Graph); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d triples)\n", path, ds.Graph.NumEdges())

	eng, err := gqbe.LoadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded: %d entities, %d facts, %d predicates\n\n",
		eng.NumEntities(), eng.NumFacts(), eng.NumPredicates())

	q := ds.MustQuery("D8")
	example := q.QueryTuple()
	fmt.Printf("example: ⟨%s⟩ (%s)\n\n", strings.Join(example, ", "), q.Description)

	res, err := eng.Query(example, &gqbe.Options{K: 10})
	if err != nil {
		log.Fatal(err)
	}
	truth := make(map[string]bool)
	for _, row := range q.GroundTruth(1) {
		truth[strings.Join(row, "|")] = true
	}
	for i, a := range res.Answers {
		mark := " "
		if truth[strings.Join(a.Entities, "|")] {
			mark = "✓"
		}
		fmt.Printf("%2d. %s ⟨%s⟩  score=%.3f\n", i+1, mark, strings.Join(a.Entities, ", "), a.Score)
	}
}
