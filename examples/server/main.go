// Server example: stand up the gqbed serving subsystem in-process over the
// paper's Fig. 1 knowledge-graph excerpt, then query it with curl.
//
// Run with: go run ./examples/server
//
// Then from another terminal:
//
//	# query by example — "entities like ⟨Jerry Yang, Yahoo!⟩"
//	curl -s localhost:8080/v1/query -d '{"tuple":["Jerry Yang","Yahoo!"]}'
//
//	# repeat it: the answer now comes from the result cache ("cached":true)
//	curl -s localhost:8080/v1/query -d '{"tuple":["Jerry Yang","Yahoo!"]}'
//
//	# multi-tuple query sharpening the intent (§III-D of the paper)
//	curl -s localhost:8080/v1/query \
//	     -d '{"tuples":[["Jerry Yang","Yahoo!"],["Sergey Brin","Google"]]}'
//
//	# batch: several queries in one request, answered per item; duplicate
//	# items are computed once ("deduped":true) and repeats of anything
//	# already cached or in flight never touch the engine
//	curl -s localhost:8080/v1/query:batch -d '{"queries":[
//	       {"tuple":["Jerry Yang","Yahoo!"]},
//	       {"tuple":["Jerry Yang","Yahoo!"]},
//	       {"tuple":["Sergey Brin","Google"],"k":5},
//	       {"tuple":["No Such Entity","Yahoo!"]}]}'
//
//	# bound the query: an impossible 1ms-style deadline returns a timeout
//	curl -s localhost:8080/v1/query \
//	     -d '{"tuple":["Jerry Yang","Yahoo!"],"timeout_ms":1,"no_cache":true}'
//
//	# entity lookup, liveness, and serving metrics — docs/OPERATIONS.md
//	# has the field-by-field /statz glossary
//	curl -s localhost:8080/v1/entity/Jerry%20Yang
//	curl -s localhost:8080/healthz
//	curl -s localhost:8080/statz
//
// For a standalone daemon over a TSV graph file, use cmd/gqbed instead.
// The production startup path builds the store across all cores on the
// first start and writes a binary snapshot, so every restart skips parsing
// and index construction entirely:
//
//	go run ./cmd/kggen -dataset freebase -out /tmp/freebase.tsv
//	go run ./cmd/gqbed -graph /tmp/freebase.tsv -addr :8080 \
//	    -build-shards 0 -snapshot /tmp/freebase.snap -snapshot-write
//
// On restart the existing snapshot wins over -graph (a corrupt one falls
// back to rebuilding). Add -search-workers N to fan each lattice search
// across N evaluators — answers are bit-identical at any setting. The full
// flag reference is docs/OPERATIONS.md.
package main

import (
	"log"
	"net/http"

	"gqbe"
	"gqbe/internal/server"
	"gqbe/internal/testkg"
)

func main() {
	b := gqbe.NewBuilder()
	for _, t := range testkg.Fig1Triples() {
		b.Add(t[0], t[1], t[2])
	}
	eng, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	srv := server.New(eng, server.Config{})
	log.Printf("serving %d entities / %d facts on :8080 — try:", eng.NumEntities(), eng.NumFacts())
	log.Printf(`  curl -s localhost:8080/v1/query -d '{"tuple":["Jerry Yang","Yahoo!"]}'`)
	log.Fatal(http.ListenAndServe(":8080", srv))
}
