// Quickstart: build the paper's Fig. 1 knowledge-graph excerpt in a few
// lines and ask GQBE the running-example query — "entities like
// ⟨Jerry Yang, Yahoo!⟩" — which should surface the other founder/company
// pairs without any query language.
//
// Run with: go run ./examples/quickstart
//
// The Builder below is the programmatic path for small graphs. For real
// TSV knowledge graphs use the loaders instead — gqbe.LoadFile, or at
// multi-GB scale the fast-startup pair from docs/ARCHITECTURE.md:
//
//	eng, _ := gqbe.LoadFileSharded("kg.tsv", 0) // build across all cores
//	_ = eng.WriteSnapshotFile("kg.snap")        // …then restart via
//	eng, _ = gqbe.LoadSnapshotFile("kg.snap")   // no parse, no indexing
//
// and see gqbe.Options.Parallelism for fanning a single query's lattice
// search across cores (identical answers, lower latency).
package main

import (
	"fmt"
	"log"
	"strings"

	"gqbe"
)

func main() {
	b := gqbe.NewBuilder()
	for _, t := range [][3]string{
		{"Jerry Yang", "founded", "Yahoo!"},
		{"David Filo", "founded", "Yahoo!"},
		{"Steve Wozniak", "founded", "Apple Inc."},
		{"Steve Jobs", "founded", "Apple Inc."},
		{"Sergey Brin", "founded", "Google"},
		{"Larry Page", "founded", "Google"},
		{"Bill Gates", "founded", "Microsoft"},
		{"Jerry Yang", "education", "Stanford"},
		{"Sergey Brin", "education", "Stanford"},
		{"Larry Page", "education", "Stanford"},
		{"Jerry Yang", "places_lived", "San Jose"},
		{"Steve Wozniak", "places_lived", "San Jose"},
		{"Jerry Yang", "nationality", "USA"},
		{"Steve Wozniak", "nationality", "USA"},
		{"Sergey Brin", "nationality", "USA"},
		{"Bill Gates", "nationality", "USA"},
		{"Yahoo!", "headquartered_in", "Sunnyvale"},
		{"Apple Inc.", "headquartered_in", "Cupertino"},
		{"Google", "headquartered_in", "Mountain View"},
		{"Microsoft", "headquartered_in", "Redmond"},
		{"Sunnyvale", "located_in", "California"},
		{"Cupertino", "located_in", "California"},
		{"Mountain View", "located_in", "California"},
		{"San Jose", "located_in", "California"},
		{"Stanford", "located_in", "California"},
		{"Redmond", "located_in", "Washington"},
		{"California", "located_in", "USA"},
		{"Washington", "located_in", "USA"},
	} {
		b.Add(t[0], t[1], t[2])
	}
	// Background entities give the predicates realistic relative
	// frequencies: with only the excerpt above, places_lived occurs twice
	// in the whole graph and would outweigh founded. GQBE's edge weighting
	// (inverse label frequency / participation degree) assumes real-world
	// statistics, where founding a company is rare and living in a city is
	// not.
	cities := []string{"San Jose", "Sunnyvale", "Cupertino", "Mountain View", "Redmond", "Oakland"}
	for i := 0; i < 18; i++ {
		p := fmt.Sprintf("Resident %d", i+1)
		b.Add(p, "places_lived", cities[i%len(cities)])
		b.Add(p, "nationality", "USA")
		b.Add(p, "education", []string{"Stanford", "Berkeley"}[i%2])
	}
	for i := 0; i < 8; i++ {
		b.Add(fmt.Sprintf("Startup %d", i+1), "headquartered_in", cities[i%len(cities)])
	}
	b.Add("Oakland", "located_in", "California")
	b.Add("Berkeley", "located_in", "California")
	eng, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Query by example: ⟨Jerry Yang, Yahoo!⟩")
	res, err := eng.Query([]string{"Jerry Yang", "Yahoo!"}, &gqbe.Options{K: 5, KPrime: 10, MQGSize: 10})
	if err != nil {
		log.Fatal(err)
	}
	for i, a := range res.Answers {
		fmt.Printf("%d. ⟨%s⟩  score=%.3f\n", i+1, strings.Join(a.Entities, ", "), a.Score)
	}
	fmt.Printf("\n(derived a %d-edge hidden query graph, evaluated %d lattice nodes in %v)\n",
		res.Stats.MQGEdges, res.Stats.NodesEvaluated, res.Stats.Processing)
}
