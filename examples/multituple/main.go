// Multituple: §III-D of the paper — several example tuples express an
// intent more precisely than one. A single example ⟨athlete, award⟩ leaves
// GQBE guessing which of the athlete's relationships matter; adding a second
// and third example keeps only the relationships the examples share.
//
// This mirrors the paper's Table V protocol: Tuple1 is the workload query
// tuple, Tuple2/Tuple3 come from the ground-truth table, and accuracy is
// measured against the remaining rows.
//
// Run with: go run ./examples/multituple
package main

import (
	"fmt"
	"log"
	"strings"

	"gqbe"
	"gqbe/internal/kgsynth"
)

func main() {
	ds := kgsynth.Freebase(kgsynth.Config{Seed: 42, Scale: 0.5})
	b := gqbe.NewBuilder()
	ds.Graph.EdgesAsTriples(func(s, p, o string) { b.Add(s, p, o) })
	eng, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	q := ds.MustQuery("F8") // footballers and the clubs they played for
	truth := make(map[string]bool)
	for _, row := range q.GroundTruth(3) {
		truth[strings.Join(row, "|")] = true
	}
	precision := func(res *gqbe.Result, k int) float64 {
		hits := 0
		for i := 0; i < k && i < len(res.Answers); i++ {
			if truth[strings.Join(res.Answers[i].Entities, "|")] {
				hits++
			}
		}
		return float64(hits) / float64(k)
	}

	opts := &gqbe.Options{K: 25}

	single, err := eng.Query(q.Table[0], opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one example   %v\n  P@25 = %.2f   (MQG %d edges, %d lattice nodes)\n\n",
		q.Table[0], precision(single, 25), single.Stats.MQGEdges, single.Stats.NodesEvaluated)

	double, err := eng.QueryMulti([][]string{q.Table[0], q.Table[1]}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two examples  %v + %v\n  P@25 = %.2f   (merged MQG %d edges, merge took %v)\n\n",
		q.Table[0], q.Table[1], precision(double, 25), double.Stats.MQGEdges, double.Stats.Merge)

	triple, err := eng.QueryMulti([][]string{q.Table[0], q.Table[1], q.Table[2]}, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("three examples\n  P@25 = %.2f\n\ntop answers with three examples:\n", precision(triple, 25))
	for i := 0; i < 5 && i < len(triple.Answers); i++ {
		fmt.Printf("%d. ⟨%s⟩  score=%.3f\n", i+1, strings.Join(triple.Answers[i].Entities, ", "), triple.Answers[i].Score)
	}
}
